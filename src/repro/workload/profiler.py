"""Online workload profiler and shift detection.

The ThunderServe runtime continuously monitors the incoming request stream
(average prompt length, average response length and arrival rate) and notifies the
scheduler when the observed workload drifts far enough from the one the current
deployment plan was optimised for.  That notification triggers the *lightweight
rescheduling* of §3.4 (re-designate phases + re-orchestrate, nothing else).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

from repro.core.types import Request
from repro.workload.spec import WorkloadSpec, WorkloadStats


@dataclass(frozen=True)
class WorkloadShift:
    """A detected workload shift.

    Attributes
    ----------
    previous:
        The reference statistics the current plan was built for.
    current:
        The newly observed statistics.
    input_ratio / output_ratio / rate_ratio:
        Ratios of current to previous means; values far from 1 indicate drift.
    """

    previous: WorkloadStats
    current: WorkloadStats
    input_ratio: float
    output_ratio: float
    rate_ratio: float

    def describe(self) -> str:
        """Human-readable shift summary."""
        return (
            f"workload shift: input x{self.input_ratio:.2f}, "
            f"output x{self.output_ratio:.2f}, rate x{self.rate_ratio:.2f}"
        )


class WorkloadProfiler:
    """Sliding-window estimator of workload statistics with shift detection.

    Parameters
    ----------
    window_size:
        Number of most recent requests used to compute the running statistics.
    shift_threshold:
        Relative change in mean prompt length, mean response length or request
        rate that counts as a workload shift (e.g. ``0.5`` = 50 %).
    min_requests:
        Minimum number of observed requests before shifts are reported (avoids
        spurious triggers on a cold window).
    """

    def __init__(
        self,
        window_size: int = 256,
        shift_threshold: float = 0.5,
        min_requests: int = 32,
    ) -> None:
        if window_size < 1:
            raise ValueError("window_size must be >= 1")
        if shift_threshold <= 0:
            raise ValueError("shift_threshold must be positive")
        if min_requests < 1:
            raise ValueError("min_requests must be >= 1")
        self.window_size = window_size
        self.shift_threshold = shift_threshold
        self.min_requests = min_requests
        self._window: Deque[Request] = deque(maxlen=window_size)
        self._reference: Optional[WorkloadStats] = None
        self._total_observed = 0

    # ------------------------------------------------------------------ recording
    def observe(self, request: Request) -> None:
        """Record one arriving request."""
        self._window.append(request)
        self._total_observed += 1

    def observe_many(self, requests) -> None:
        """Record a batch of arriving requests."""
        for request in requests:
            self.observe(request)

    @property
    def total_observed(self) -> int:
        """Total number of requests observed since construction."""
        return self._total_observed

    # ------------------------------------------------------------------ statistics
    def current_stats(self) -> WorkloadStats:
        """Statistics over the current window (zeros when the window is empty)."""
        if not self._window:
            return WorkloadStats(0.0, 0.0, 0.0, 0)
        inputs = [r.input_length for r in self._window]
        outputs = [r.output_length for r in self._window]
        arrivals = [r.arrival_time for r in self._window]
        span = max(arrivals) - min(arrivals)
        rate = (len(self._window) - 1) / span if span > 0 and len(self._window) > 1 else 0.0
        return WorkloadStats(
            mean_input_length=float(sum(inputs)) / len(inputs),
            mean_output_length=float(sum(outputs)) / len(outputs),
            request_rate=rate,
            num_requests=len(self._window),
        )

    def set_reference(self, stats: Optional[WorkloadStats] = None) -> WorkloadStats:
        """Pin the reference statistics the current deployment plan was built for.

        With no argument, the current window statistics become the reference
        (typical right after a (re)scheduling event).
        """
        self._reference = stats or self.current_stats()
        return self._reference

    def set_reference_from_spec(self, spec: WorkloadSpec, request_rate: float) -> WorkloadStats:
        """Pin the reference from a workload spec and planned request rate."""
        stats = WorkloadStats(
            mean_input_length=spec.mean_input_length,
            mean_output_length=spec.mean_output_length,
            request_rate=request_rate,
            num_requests=0,
        )
        self._reference = stats
        return stats

    @property
    def reference(self) -> Optional[WorkloadStats]:
        """The pinned reference statistics, if any."""
        return self._reference

    # ------------------------------------------------------------------ detection
    def detect_shift(self) -> Optional[WorkloadShift]:
        """Return a :class:`WorkloadShift` if the observed workload drifted, else ``None``."""
        if self._reference is None or len(self._window) < self.min_requests:
            return None
        current = self.current_stats()
        prev = self._reference

        def ratio(cur: float, ref: float) -> float:
            if ref <= 0:
                return 1.0 if cur <= 0 else float("inf")
            return cur / ref

        input_ratio = ratio(current.mean_input_length, prev.mean_input_length)
        output_ratio = ratio(current.mean_output_length, prev.mean_output_length)
        rate_ratio = ratio(current.request_rate, prev.request_rate) if prev.request_rate > 0 else 1.0

        def shifted(r: float) -> bool:
            return r > 1 + self.shift_threshold or r < 1 / (1 + self.shift_threshold)

        if shifted(input_ratio) or shifted(output_ratio) or shifted(rate_ratio):
            return WorkloadShift(
                previous=prev,
                current=current,
                input_ratio=input_ratio,
                output_ratio=output_ratio,
                rate_ratio=rate_ratio,
            )
        return None

    def reset(self) -> None:
        """Clear the window (the reference is kept)."""
        self._window.clear()


__all__ = ["WorkloadProfiler", "WorkloadShift"]

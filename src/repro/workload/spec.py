"""Workload specifications (length distributions + arrival process parameters).

A :class:`WorkloadSpec` describes the *shape* of a request population: how long the
prompts are, how long the responses are, and how bursty the arrivals are.  The
prefill:decode resource balance that ThunderServe's scheduler discovers is driven
almost entirely by the ratio of prompt to response length, so the two built-in
workloads deliberately sit on opposite sides of that balance:

* :data:`CODING_WORKLOAD` — long prompts (median ≈ 1500 tokens), very short
  responses (median ≈ 13 tokens) → prefill-heavy.
* :data:`CONVERSATION_WORKLOAD` — medium prompts (median ≈ 1024 tokens), long
  responses (median ≈ 129 tokens) → decode-heavy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.core.rng import RNGLike, ensure_rng


@dataclass(frozen=True)
class WorkloadSpec:
    """Statistical description of one request workload.

    Prompt and response lengths are modelled as independent log-normal
    distributions parameterised by their median and the log-space standard
    deviation ``sigma``, truncated to ``[min, max]``.  Log-normals capture the
    heavy right tail observed in production LLM traces.
    """

    name: str
    median_input_length: float
    median_output_length: float
    input_sigma: float = 0.35
    output_sigma: float = 0.6
    min_input_length: int = 8
    max_input_length: int = 8192
    min_output_length: int = 1
    max_output_length: int = 2048

    def __post_init__(self) -> None:
        if self.median_input_length <= 0 or self.median_output_length <= 0:
            raise ConfigurationError("median lengths must be positive")
        if self.input_sigma < 0 or self.output_sigma < 0:
            raise ConfigurationError("sigmas must be non-negative")
        if self.min_input_length < 1 or self.min_output_length < 1:
            raise ConfigurationError("minimum lengths must be >= 1")
        if self.max_input_length < self.min_input_length:
            raise ConfigurationError("max_input_length < min_input_length")
        if self.max_output_length < self.min_output_length:
            raise ConfigurationError("max_output_length < min_output_length")

    # ------------------------------------------------------------------ sampling
    def sample_input_lengths(self, n: int, rng: RNGLike = None) -> np.ndarray:
        """Sample ``n`` prompt lengths (integer token counts)."""
        return self._sample(
            n, self.median_input_length, self.input_sigma,
            self.min_input_length, self.max_input_length, rng,
        )

    def sample_output_lengths(self, n: int, rng: RNGLike = None) -> np.ndarray:
        """Sample ``n`` response lengths (integer token counts)."""
        return self._sample(
            n, self.median_output_length, self.output_sigma,
            self.min_output_length, self.max_output_length, rng,
        )

    @staticmethod
    def _sample(
        n: int, median: float, sigma: float, lo: int, hi: int, rng: RNGLike
    ) -> np.ndarray:
        if n < 0:
            raise ValueError("n must be >= 0")
        gen = ensure_rng(rng)
        if sigma == 0:
            values = np.full(n, median)
        else:
            values = gen.lognormal(mean=math.log(median), sigma=sigma, size=n)
        return np.clip(np.round(values), lo, hi).astype(int)

    # ------------------------------------------------------------------ analytics
    @property
    def mean_input_length(self) -> float:
        """Analytic mean of the (untruncated) prompt-length distribution."""
        return self.median_input_length * math.exp(self.input_sigma**2 / 2)

    @property
    def mean_output_length(self) -> float:
        """Analytic mean of the (untruncated) response-length distribution."""
        return self.median_output_length * math.exp(self.output_sigma**2 / 2)

    @property
    def prefill_decode_token_ratio(self) -> float:
        """Expected prompt tokens per response token — the prefill:decode demand ratio."""
        return self.mean_input_length / self.mean_output_length

    def with_name(self, name: str) -> "WorkloadSpec":
        """Return a renamed copy (useful when building mixed workloads)."""
        return replace(self, name=name)


@dataclass(frozen=True)
class WorkloadStats:
    """Empirical summary of a window of observed requests.

    Produced by the online workload profiler and consumed by the scheduler's
    shift detector and by the lightweight rescheduler.
    """

    mean_input_length: float
    mean_output_length: float
    request_rate: float
    num_requests: int = 0

    def as_spec(
        self, name: str = "observed", template: "WorkloadSpec | None" = None
    ) -> WorkloadSpec:
        """Convert the observed means into a workload spec for re-planning.

        Without a ``template`` the spec is degenerate (zero variance): the
        observed means become the medians.  With a ``template`` — typically the
        workload the deployment was planned for — its log-normal sigmas and
        length bounds are inherited and the medians are set so the spec's
        *means* match the observed means (a log-normal's mean exceeds its
        median by ``exp(sigma^2 / 2)``).  The profiler only tracks means, so
        the template supplies the spread; feeding the estimator a zero-variance
        spec collapses its quantile grid to a single point and makes per-pair
        attainment all-or-nothing, which is exactly the wrong signal to drive
        an online phase-flip decision with.
        """
        input_sigma = template.input_sigma if template is not None else 0.0
        output_sigma = template.output_sigma if template is not None else 0.0
        spec = WorkloadSpec(
            name=name,
            median_input_length=max(
                1.0, self.mean_input_length / math.exp(input_sigma**2 / 2)
            ),
            median_output_length=max(
                1.0, self.mean_output_length / math.exp(output_sigma**2 / 2)
            ),
            input_sigma=input_sigma,
            output_sigma=output_sigma,
        )
        if template is not None:
            spec = replace(
                spec,
                min_input_length=template.min_input_length,
                max_input_length=template.max_input_length,
                min_output_length=template.min_output_length,
                max_output_length=template.max_output_length,
            )
        return spec


#: Coding workload: long prompts (median > 1000 tokens), very short completions
#: (median 13 tokens) — prefill-heavy.
CODING_WORKLOAD = WorkloadSpec(
    name="coding",
    median_input_length=1152.0,
    median_output_length=13.0,
    input_sigma=0.3,
    output_sigma=0.55,
)

#: Conversation workload: long prompts (median > 1000 tokens), long completions
#: (median 129 tokens) — decode-heavy.
CONVERSATION_WORKLOAD = WorkloadSpec(
    name="conversation",
    median_input_length=1024.0,
    median_output_length=129.0,
    input_sigma=0.35,
    output_sigma=0.6,
)

_WORKLOADS: Dict[str, WorkloadSpec] = {
    "coding": CODING_WORKLOAD,
    "conversation": CONVERSATION_WORKLOAD,
}


def get_workload(name: str) -> WorkloadSpec:
    """Look up a built-in workload by name (``"coding"`` or ``"conversation"``)."""
    key = name.strip().lower()
    if key in _WORKLOADS:
        return _WORKLOADS[key]
    raise KeyError(f"Unknown workload {name!r}; known: {sorted(_WORKLOADS)}")


__all__ = [
    "WorkloadSpec",
    "WorkloadStats",
    "CODING_WORKLOAD",
    "CONVERSATION_WORKLOAD",
    "get_workload",
]

"""Request trace generation with Poisson arrivals.

Following the paper (§5.1), request arrivals follow a Poisson process determined by
the average request rate, with inter-arrival times drawn from an exponential
distribution; prompt and response lengths are drawn from the workload spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from repro.core.rng import RNGLike, ensure_rng
from repro.core.types import Request
from repro.workload.spec import WorkloadSpec
from repro.workload.trace import Trace


@dataclass
class PoissonArrivalGenerator:
    """Generates request traces with exponential inter-arrival times.

    Parameters
    ----------
    spec:
        Workload shape (length distributions).
    request_rate:
        Mean arrival rate in requests per second.
    seed:
        Seed or generator controlling both arrivals and lengths.
    """

    spec: WorkloadSpec
    request_rate: float
    seed: RNGLike = None

    def __post_init__(self) -> None:
        if self.request_rate <= 0:
            raise ValueError(f"request_rate must be positive, got {self.request_rate}")
        self._rng = ensure_rng(self.seed)

    def generate(
        self,
        duration: Optional[float] = None,
        num_requests: Optional[int] = None,
        start_time: float = 0.0,
        first_request_id: int = 0,
    ) -> Trace:
        """Generate a trace covering ``duration`` seconds or ``num_requests`` requests.

        Exactly one of ``duration`` / ``num_requests`` must be provided.
        """
        if (duration is None) == (num_requests is None):
            raise ValueError("provide exactly one of duration or num_requests")
        if duration is not None and duration <= 0:
            raise ValueError("duration must be positive")
        if num_requests is not None and num_requests < 0:
            raise ValueError("num_requests must be >= 0")

        if num_requests is None:
            # Over-sample arrivals then truncate to the duration window.
            expected = max(1, int(self.request_rate * duration * 1.5) + 10)
            gaps = self._rng.exponential(1.0 / self.request_rate, size=expected)
            arrivals = start_time + np.cumsum(gaps)
            arrivals = arrivals[arrivals < start_time + duration]
            n = len(arrivals)
        else:
            n = num_requests
            gaps = self._rng.exponential(1.0 / self.request_rate, size=n)
            arrivals = start_time + np.cumsum(gaps)

        inputs = self.spec.sample_input_lengths(n, self._rng)
        outputs = self.spec.sample_output_lengths(n, self._rng)
        requests = [
            Request(
                request_id=first_request_id + i,
                arrival_time=float(arrivals[i]),
                input_length=int(inputs[i]),
                output_length=int(outputs[i]),
                workload=self.spec.name,
            )
            for i in range(n)
        ]
        return Trace(requests=requests, name=self.spec.name)


def generate_requests(
    spec: WorkloadSpec,
    request_rate: float,
    duration: Optional[float] = None,
    num_requests: Optional[int] = None,
    seed: RNGLike = None,
) -> Trace:
    """Convenience wrapper around :class:`PoissonArrivalGenerator`."""
    gen = PoissonArrivalGenerator(spec=spec, request_rate=request_rate, seed=seed)
    return gen.generate(duration=duration, num_requests=num_requests)


__all__ = ["PoissonArrivalGenerator", "generate_requests"]

"""Request trace generation with Poisson arrivals, eager or streamed.

Following the paper (§5.1), request arrivals follow a Poisson process determined
by the average request rate, with inter-arrival times drawn from an exponential
distribution; prompt and response lengths are drawn from the workload spec.

Two generation paths share one :class:`PoissonArrivalGenerator`:

* :meth:`~PoissonArrivalGenerator.generate` — the legacy eager path, producing
  a :class:`~repro.workload.trace.Trace` of request objects.  Its RNG stream
  (interleaved gaps → inputs → outputs on a single generator) is frozen: every
  seed-pinned trace in the test suite and the committed benchmark baselines
  depend on it byte for byte.
* :meth:`~PoissonArrivalGenerator.iter_chunks` /
  :meth:`~PoissonArrivalGenerator.generate_arrays` — the streaming path,
  yielding fixed-size :class:`~repro.workload.trace.RequestArrays` chunks in
  bounded memory.  Arrivals, prompt lengths and response lengths each draw
  from their own child stream (spawned deterministically from the generator's
  seed), so the realization is **independent of the chunk size**: any chunking
  concatenates to exactly the bytes of the eager-arrays path.

:class:`DiurnalTimeWarp` turns the homogeneous arrival process into a
nonhomogeneous (diurnal) one by inverse-transforming cumulative intensity —
a deterministic, elementwise (hence chunk-stable) time mapping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from repro.core.rng import RNGLike, ensure_rng
from repro.core.types import Request
from repro.workload.spec import WorkloadSpec
from repro.workload.trace import RequestArrays, Trace

#: default number of requests per streamed chunk (~2 MB of request columns)
DEFAULT_CHUNK_SIZE = 65_536


@dataclass
class DiurnalTimeWarp:
    """Monotone time warp imposing a sinusoidal (diurnal) arrival intensity.

    The Poisson generator produces a *homogeneous* process at the mean request
    rate; warping its cumulative arrival times through the inverse cumulative
    relative intensity ``M(s) = integral of (1 + amplitude * sin(2*pi*s/period
    + phase))`` yields a nonhomogeneous process whose instantaneous rate swings
    between ``rate * (1 - amplitude)`` and ``rate * (1 + amplitude)`` — the
    standard inversion construction for nonhomogeneous Poisson processes.

    The inverse is evaluated by linear interpolation on a precomputed grid,
    which is deterministic and elementwise, so warped chunked generation stays
    bitwise-identical to warped eager generation.

    Parameters
    ----------
    horizon:
        Largest homogeneous-time value the warp must cover (for a trace of
        ``n`` requests at rate ``r``, about ``n / r`` plus slack).
    period:
        Length of one intensity cycle in seconds (default: 24 h).
    amplitude:
        Relative swing of the intensity, in ``[0, 1)``.
    phase:
        Phase offset of the sinusoid in radians.
    grid_points_per_period:
        Resolution of the inversion grid.
    """

    horizon: float
    period: float = 86_400.0
    amplitude: float = 0.5
    phase: float = 0.0
    grid_points_per_period: int = 4096

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.period <= 0:
            raise ValueError("period must be positive")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        if self.grid_points_per_period < 8:
            raise ValueError("grid_points_per_period must be >= 8")
        # M(s) is increasing with slope >= 1 - amplitude, so the preimage of
        # [0, horizon] is contained in [0, horizon / (1 - amplitude)]; one
        # extra period of slack keeps the top grid cell interior.
        s_max = self.horizon / (1.0 - self.amplitude) + self.period
        points = int(math.ceil(s_max / self.period * self.grid_points_per_period)) + 1
        self._s_grid = np.linspace(0.0, s_max, points)
        omega = 2.0 * math.pi / self.period
        scale = self.amplitude / omega
        self._m_grid = self._s_grid + scale * (
            math.cos(self.phase) - np.cos(omega * self._s_grid + self.phase)
        )

    def __call__(self, times: np.ndarray) -> np.ndarray:
        """Map homogeneous cumulative times to diurnal wall-clock times."""
        t = np.asarray(times, dtype=np.float64)
        if t.size and float(t.max()) > float(self._m_grid[-1]):
            raise ValueError(
                f"time {float(t.max()):.1f} exceeds the warp horizon "
                f"{float(self._m_grid[-1]):.1f}; build the warp with a larger horizon"
            )
        return np.interp(t, self._m_grid, self._s_grid)


@dataclass
class PoissonArrivalGenerator:
    """Generates request traces with exponential inter-arrival times.

    Parameters
    ----------
    spec:
        Workload shape (length distributions).
    request_rate:
        Mean arrival rate in requests per second.
    seed:
        Seed or generator controlling both arrivals and lengths.
    """

    spec: WorkloadSpec
    request_rate: float
    seed: RNGLike = None

    def __post_init__(self) -> None:
        if self.request_rate <= 0:
            raise ValueError(f"request_rate must be positive, got {self.request_rate}")
        self._rng = ensure_rng(self.seed)
        self._stream_seeds: Optional[list] = None

    # ------------------------------------------------------------------ eager
    def generate(
        self,
        duration: Optional[float] = None,
        num_requests: Optional[int] = None,
        start_time: float = 0.0,
        first_request_id: int = 0,
    ) -> Trace:
        """Generate a trace covering ``duration`` seconds or ``num_requests`` requests.

        Exactly one of ``duration`` / ``num_requests`` must be provided.  This
        legacy path draws gaps, prompt lengths and response lengths from one
        interleaved RNG stream; its realizations are frozen (seed-pinned tests
        and committed baselines depend on them).  New large-scale consumers
        should prefer :meth:`iter_chunks` / :meth:`generate_arrays`.
        """
        if (duration is None) == (num_requests is None):
            raise ValueError("provide exactly one of duration or num_requests")
        if duration is not None and duration <= 0:
            raise ValueError("duration must be positive")
        if num_requests is not None and num_requests < 0:
            raise ValueError("num_requests must be >= 0")

        if num_requests is None:
            # Over-sample arrivals then truncate to the duration window.
            expected = max(1, int(self.request_rate * duration * 1.5) + 10)
            gaps = self._rng.exponential(1.0 / self.request_rate, size=expected)
            arrivals = start_time + np.cumsum(gaps)
            arrivals = arrivals[arrivals < start_time + duration]
            n = len(arrivals)
        else:
            n = num_requests
            gaps = self._rng.exponential(1.0 / self.request_rate, size=n)
            arrivals = start_time + np.cumsum(gaps)

        inputs = self.spec.sample_input_lengths(n, self._rng)
        outputs = self.spec.sample_output_lengths(n, self._rng)
        requests = [
            Request(
                request_id=first_request_id + i,
                arrival_time=float(arrivals[i]),
                input_length=int(inputs[i]),
                output_length=int(outputs[i]),
                workload=self.spec.name,
            )
            for i in range(n)
        ]
        return Trace(requests=requests, name=self.spec.name)

    # ------------------------------------------------------------------ streaming
    def _stream_rngs(self) -> List[np.random.Generator]:
        """Fresh generators for the three per-component streams.

        The three child seed sequences (arrival gaps, prompt lengths, response
        lengths) are spawned once from the generator's own seed sequence —
        without consuming the legacy stream, so :meth:`generate` realizations
        are unaffected — and cached, so every call restarts the exact same
        three streams.  Separate component streams are what makes chunked
        generation independent of the chunk size.
        """
        if self._stream_seeds is None:
            seed_seq = getattr(self._rng.bit_generator, "seed_seq", None)
            if seed_seq is None:  # pragma: no cover - all numpy bit generators have one
                raise TypeError(
                    "streaming generation requires a bit generator with a seed sequence"
                )
            self._stream_seeds = list(seed_seq.spawn(3))
        return [np.random.default_rng(ss) for ss in self._stream_seeds]

    def iter_chunks(
        self,
        num_requests: int,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        start_time: float = 0.0,
        first_request_id: int = 0,
        time_warp=None,
    ) -> Iterator[RequestArrays]:
        """Stream ``num_requests`` requests as fixed-size struct-of-arrays chunks.

        Memory use is bounded by ``chunk_size`` regardless of ``num_requests``,
        and the realization is **chunk-size invariant**: concatenating the
        chunks reproduces :meth:`generate_arrays` bitwise for any chunk size
        (each component draws from its own RNG stream, and the arrival cumsum
        carries the running sum across chunk boundaries exactly).

        Parameters
        ----------
        num_requests:
            Total number of requests to produce.
        chunk_size:
            Maximum rows per yielded :class:`RequestArrays` block.
        start_time:
            Arrival time offset of the first gap.
        first_request_id:
            Id of the first request; ids increase consecutively.
        time_warp:
            Optional monotone elementwise mapping (e.g. :class:`DiurnalTimeWarp`)
            applied to the homogeneous cumulative arrival times.
        """
        if num_requests < 0:
            raise ValueError("num_requests must be >= 0")
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        arr_rng, in_rng, out_rng = self._stream_rngs()
        scale = 1.0 / self.request_rate
        produced = 0
        carry = float(start_time)
        buffer = np.empty(chunk_size + 1, dtype=np.float64)
        while produced < num_requests:
            c = min(chunk_size, num_requests - produced)
            gaps = arr_rng.exponential(scale, size=c)
            # Sequential accumulation continued across chunks: seeding the
            # cumsum with the carried last arrival reproduces one whole-trace
            # cumsum bitwise (left-to-right float64 adds in both cases).
            buffer[0] = carry
            buffer[1 : c + 1] = gaps
            homogeneous = np.cumsum(buffer[: c + 1])[1:]
            carry = float(homogeneous[-1])
            arrivals = homogeneous if time_warp is None else time_warp(homogeneous)
            inputs = self.spec.sample_input_lengths(c, in_rng)
            outputs = self.spec.sample_output_lengths(c, out_rng)
            ids = np.arange(
                first_request_id + produced,
                first_request_id + produced + c,
                dtype=np.int64,
            )
            produced += c
            yield RequestArrays(
                request_id=ids,
                arrival_time=arrivals,
                input_length=inputs,
                output_length=outputs,
                workload=self.spec.name,
            )

    def generate_arrays(
        self,
        num_requests: int,
        start_time: float = 0.0,
        first_request_id: int = 0,
        time_warp=None,
    ) -> RequestArrays:
        """Generate ``num_requests`` requests eagerly in struct-of-arrays form.

        Equivalent to concatenating :meth:`iter_chunks` — bitwise, for any
        chunk size.  Prefer :meth:`iter_chunks` when the trace is too large to
        hold at once.
        """
        chunks = list(
            self.iter_chunks(
                num_requests,
                chunk_size=max(1, num_requests),
                start_time=start_time,
                first_request_id=first_request_id,
                time_warp=time_warp,
            )
        )
        return RequestArrays.concat(chunks)


def generate_requests(
    spec: WorkloadSpec,
    request_rate: float,
    duration: Optional[float] = None,
    num_requests: Optional[int] = None,
    seed: RNGLike = None,
) -> Trace:
    """Convenience wrapper around :class:`PoissonArrivalGenerator`."""
    gen = PoissonArrivalGenerator(spec=spec, request_rate=request_rate, seed=seed)
    return gen.generate(duration=duration, num_requests=num_requests)


__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "DiurnalTimeWarp",
    "PoissonArrivalGenerator",
    "generate_requests",
]

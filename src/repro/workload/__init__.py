"""Workload specification, trace generation and online profiling.

The paper evaluates two real-world workloads taken from the Azure LLM inference
traces — *coding* (long prompts, very short responses) and *conversation* (long
prompts, long responses) — with Poisson request arrivals.  We replace the
proprietary traces with synthetic generators whose medians match the numbers the
paper reports (§ "Implementation details": coding has a median prompt above 1000
tokens and a median of 13 output tokens; conversation has a median of 129 output
tokens).
"""

from repro.workload.spec import (
    WorkloadSpec,
    WorkloadStats,
    CODING_WORKLOAD,
    CONVERSATION_WORKLOAD,
    get_workload,
)
from repro.workload.generator import (
    DEFAULT_CHUNK_SIZE,
    DiurnalTimeWarp,
    PoissonArrivalGenerator,
    generate_requests,
)
from repro.workload.trace import RequestArrays, Trace, merge_traces
from repro.workload.profiler import WorkloadProfiler, WorkloadShift

__all__ = [
    "WorkloadSpec",
    "WorkloadStats",
    "CODING_WORKLOAD",
    "CONVERSATION_WORKLOAD",
    "get_workload",
    "DEFAULT_CHUNK_SIZE",
    "DiurnalTimeWarp",
    "PoissonArrivalGenerator",
    "generate_requests",
    "RequestArrays",
    "Trace",
    "merge_traces",
    "WorkloadProfiler",
    "WorkloadShift",
]

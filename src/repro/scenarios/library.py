"""The built-in scenario library.

Seven named, parameterized scenarios covering the operating conditions a
production phase-splitting deployment actually meets:

* :class:`DiurnalTrafficScenario` — a compressed day/night sinusoidal load cycle;
* :class:`BurstySpikesScenario` — steady traffic punctuated by short spikes;
* :class:`LongContextRAGScenario` — retrieval-augmented prompts (very long
  inputs, moderate outputs) that stress prefill and KV transfer;
* :class:`LongPromptRAGScenario` — retrieval lookups (even heavier prompts,
  near-vanishing decodes) that concentrate essentially all work in the prefill
  phase — the stress test of the coalesced prefill batching path;
* :class:`AgenticCodingMixScenario` — an agentic mix of coding and conversation
  turns, the workload-shift situation of §3.4;
* :class:`MultiTenantSLOTiersScenario` — gold/silver/bronze tenants sharing the
  fleet under different SLO tiers;
* :class:`SpotPreemptionScenario` — steady traffic with spot-instance
  preemptions injected mid-run (the Figure 11 failure situation).

All scenarios are frozen dataclasses: parameterize by constructing with different
field values, and rely on :meth:`~repro.scenarios.base.Scenario.build_trace`
being deterministic under a fixed seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import ClassVar, Dict, Tuple

from repro.core.rng import RNGLike, ensure_rng, spawn_rng
from repro.scenarios.base import FailureEvent, Scenario, thinned_poisson_trace
from repro.workload.generator import PoissonArrivalGenerator
from repro.workload.spec import CODING_WORKLOAD, CONVERSATION_WORKLOAD, WorkloadSpec
from repro.workload.trace import Trace, merge_traces


#: Retrieval-augmented generation: prompts carry several retrieved passages, so
#: inputs are several times longer than plain conversation while outputs stay
#: moderate — the most prefill- and KV-transfer-heavy shape in the library.
RAG_WORKLOAD = WorkloadSpec(
    name="rag",
    median_input_length=3072.0,
    median_output_length=160.0,
    input_sigma=0.25,
    output_sigma=0.5,
    max_input_length=8192,
)


@dataclass(frozen=True)
class DiurnalTrafficScenario(Scenario):
    """A day/night load cycle compressed into the trace duration.

    The arrival rate follows ``base + (peak - base) * (1 - cos(2*pi*t/T)) / 2``:
    it starts at the overnight trough, peaks mid-trace and returns to the trough,
    like one diurnal period of a consumer-facing service.  ``request_rate`` is
    the *peak* rate — the figure capacity must be planned for.
    """

    name: ClassVar[str] = "diurnal"
    description: ClassVar[str] = "sinusoidal day/night traffic cycle"

    request_rate: float = 6.0
    duration: float = 120.0
    trough_fraction: float = 0.25
    workload: WorkloadSpec = CONVERSATION_WORKLOAD

    def __post_init__(self) -> None:
        if not 0 <= self.trough_fraction <= 1:
            raise ValueError("trough_fraction must be in [0, 1]")

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at trace time ``t``."""
        trough = self.trough_fraction * self.request_rate
        swing = self.request_rate - trough
        return trough + swing * (1.0 - math.cos(2.0 * math.pi * t / self.duration)) / 2.0

    def build_trace(self, seed: RNGLike = None) -> Trace:
        """Sample the day/night cycle as a thinned Poisson process."""
        return thinned_poisson_trace(
            self.workload, self.rate_at, self.request_rate, self.duration,
            seed=seed, name=self.name,
        )

    def planning_workload(self) -> WorkloadSpec:
        """The workload the scheduler plans for (the cycle's single spec)."""
        return self.workload


@dataclass(frozen=True)
class BurstySpikesScenario(Scenario):
    """Steady traffic punctuated by short high-rate spikes.

    ``request_rate`` is the baseline; ``num_bursts`` evenly spaced bursts each
    multiply it by ``burst_multiplier`` for ``burst_fraction`` of the burst
    period — a flash-crowd / retry-storm shape that stresses queueing headroom.
    """

    name: ClassVar[str] = "bursty"
    description: ClassVar[str] = "steady load with short flash-crowd spikes"

    request_rate: float = 4.0
    duration: float = 120.0
    burst_multiplier: float = 3.0
    num_bursts: int = 3
    burst_fraction: float = 0.12
    workload: WorkloadSpec = CONVERSATION_WORKLOAD

    def __post_init__(self) -> None:
        if self.burst_multiplier < 1:
            raise ValueError("burst_multiplier must be >= 1")
        if self.num_bursts < 1:
            raise ValueError("num_bursts must be >= 1")
        if not 0 < self.burst_fraction < 1:
            raise ValueError("burst_fraction must be in (0, 1)")

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at trace time ``t``."""
        period = self.duration / self.num_bursts
        phase = (t % period) / period
        in_burst = phase < self.burst_fraction
        return self.request_rate * (self.burst_multiplier if in_burst else 1.0)

    def build_trace(self, seed: RNGLike = None) -> Trace:
        """Sample baseline-plus-spikes arrivals as a thinned Poisson process."""
        return thinned_poisson_trace(
            self.workload, self.rate_at, self.request_rate * self.burst_multiplier,
            self.duration, seed=seed, name=self.name,
        )

    def planning_workload(self) -> WorkloadSpec:
        """The workload the scheduler plans for (spikes share the base spec)."""
        return self.workload


@dataclass(frozen=True)
class LongContextRAGScenario(Scenario):
    """Retrieval-augmented generation: very long prompts, moderate outputs."""

    name: ClassVar[str] = "long-context-rag"
    description: ClassVar[str] = "long retrieved-context prompts (prefill heavy)"

    request_rate: float = 2.0
    duration: float = 120.0
    workload: WorkloadSpec = RAG_WORKLOAD

    def build_trace(self, seed: RNGLike = None) -> Trace:
        """Sample steady Poisson arrivals of the RAG workload."""
        gen = PoissonArrivalGenerator(self.workload, self.request_rate, seed=seed)
        trace = gen.generate(duration=self.duration)
        return Trace(requests=trace.requests, name=self.name)

    def planning_workload(self) -> WorkloadSpec:
        """The workload the scheduler plans for (the RAG spec itself)."""
        return self.workload


#: Retrieval *lookups*: the prompt carries a whole document bundle but the
#: answer is a short extraction (a citation, a yes/no, a field value).  Decode
#: nearly vanishes, so prefill throughput — and the engine's coalesced prefill
#: batching — is the only thing that matters.
LONG_PROMPT_RAG_WORKLOAD = WorkloadSpec(
    name="long-prompt-rag",
    median_input_length=4096.0,
    median_output_length=24.0,
    input_sigma=0.3,
    output_sigma=0.45,
    max_input_length=8192,
)


@dataclass(frozen=True)
class LongPromptRAGScenario(Scenario):
    """Retrieval lookups: very heavy prompts with terse answers.

    The prefill-dominated extreme of the library — arrival bursts queue whole
    documents on the prefill replicas while decode replicas sit almost idle.
    Exercises multi-request prefill batches, prefill-epoch truncation by fresh
    arrivals and the coalesced KV-transfer handoffs end to end.
    """

    name: ClassVar[str] = "long-prompt-rag"
    description: ClassVar[str] = "heavy retrieval prompts, terse answers (prefill dominated)"

    request_rate: float = 2.5
    duration: float = 120.0
    workload: WorkloadSpec = LONG_PROMPT_RAG_WORKLOAD

    def build_trace(self, seed: RNGLike = None) -> Trace:
        """Sample steady Poisson arrivals of the long-prompt lookup workload."""
        gen = PoissonArrivalGenerator(self.workload, self.request_rate, seed=seed)
        trace = gen.generate(duration=self.duration)
        return Trace(requests=trace.requests, name=self.name)

    def planning_workload(self) -> WorkloadSpec:
        """The workload the scheduler plans for (the lookup spec itself)."""
        return self.workload


@dataclass(frozen=True)
class AgenticCodingMixScenario(Scenario):
    """An agent loop interleaving coding turns with conversational turns.

    Coding turns dominate by ``coding_fraction``; the remainder are conversation
    turns.  The resulting prefill:decode demand sits between the two pure
    workloads and drifts with the mix — the §3.4 workload-shift situation.
    """

    name: ClassVar[str] = "agentic-mix"
    description: ClassVar[str] = "agentic coding/conversation request mix"

    request_rate: float = 5.0
    duration: float = 120.0
    coding_fraction: float = 0.6

    def __post_init__(self) -> None:
        if not 0 < self.coding_fraction < 1:
            raise ValueError("coding_fraction must be in (0, 1)")

    def build_trace(self, seed: RNGLike = None) -> Trace:
        """Merge independent Poisson streams of coding and conversation turns."""
        rng = ensure_rng(seed)
        coding_rng, conv_rng = spawn_rng(rng, 2)
        coding = PoissonArrivalGenerator(
            CODING_WORKLOAD, self.request_rate * self.coding_fraction, seed=coding_rng
        ).generate(duration=self.duration)
        conversation = PoissonArrivalGenerator(
            CONVERSATION_WORKLOAD, self.request_rate * (1.0 - self.coding_fraction),
            seed=conv_rng,
        ).generate(duration=self.duration)
        return merge_traces([coding, conversation], name=self.name)

    def planning_workload(self) -> WorkloadSpec:
        """Mix-weighted medians: the single spec the scheduler plans the blend with."""
        f = self.coding_fraction
        return WorkloadSpec(
            name=self.name,
            median_input_length=(
                f * CODING_WORKLOAD.median_input_length
                + (1 - f) * CONVERSATION_WORKLOAD.median_input_length
            ),
            median_output_length=(
                f * CODING_WORKLOAD.median_output_length
                + (1 - f) * CONVERSATION_WORKLOAD.median_output_length
            ),
            input_sigma=max(CODING_WORKLOAD.input_sigma, CONVERSATION_WORKLOAD.input_sigma),
            output_sigma=max(CODING_WORKLOAD.output_sigma, CONVERSATION_WORKLOAD.output_sigma),
        )


@dataclass(frozen=True)
class TenantTier:
    """One tenant class of the multi-tenant scenario."""

    tenant: str
    workload: WorkloadSpec
    share: float
    slo_scale: float

    def __post_init__(self) -> None:
        if not 0 < self.share <= 1:
            raise ValueError("share must be in (0, 1]")
        if self.slo_scale <= 0:
            raise ValueError("slo_scale must be positive")


#: Default gold/silver/bronze split: a latency-sensitive interactive tier, a
#: standard tier and a batch-ish tier with a loose deadline.
DEFAULT_TIERS: Tuple[TenantTier, ...] = (
    TenantTier("gold", CONVERSATION_WORKLOAD, share=0.2, slo_scale=3.0),
    TenantTier("silver", CONVERSATION_WORKLOAD, share=0.5, slo_scale=5.0),
    TenantTier("bronze", CODING_WORKLOAD, share=0.3, slo_scale=8.0),
)


@dataclass(frozen=True)
class MultiTenantSLOTiersScenario(Scenario):
    """Several tenants share the fleet, each under its own SLO tier.

    Requests are tagged ``"tenant:<name>"`` so per-tier attainment can be
    reported separately; the scenario-level :meth:`slo_scale` is the tightest
    tier's, since that is the contract hardest to keep.
    """

    name: ClassVar[str] = "multi-tenant"
    description: ClassVar[str] = "gold/silver/bronze tenants with distinct SLO tiers"

    request_rate: float = 5.0
    duration: float = 120.0
    tiers: Tuple[TenantTier, ...] = DEFAULT_TIERS

    def __post_init__(self) -> None:
        if not self.tiers:
            raise ValueError("at least one tenant tier is required")
        total = sum(t.share for t in self.tiers)
        if not math.isclose(total, 1.0, rel_tol=1e-6):
            raise ValueError(f"tenant shares must sum to 1, got {total:g}")
        if len({t.tenant for t in self.tiers}) != len(self.tiers):
            raise ValueError("tenant names must be unique")

    def tier_slo_scales(self) -> Dict[str, float]:
        """Per-tenant SLO scale keyed by tenant name."""
        return {t.tenant: t.slo_scale for t in self.tiers}

    def build_trace(self, seed: RNGLike = None) -> Trace:
        """Merge one tagged Poisson stream per tenant tier."""
        rng = ensure_rng(seed)
        rngs = spawn_rng(rng, len(self.tiers))
        traces = []
        for tier, tier_rng in zip(self.tiers, rngs):
            spec = tier.workload.with_name(f"tenant:{tier.tenant}")
            gen = PoissonArrivalGenerator(spec, self.request_rate * tier.share, seed=tier_rng)
            traces.append(gen.generate(duration=self.duration))
        return merge_traces(traces, name=self.name)

    def planning_workload(self) -> WorkloadSpec:
        """Share-weighted medians across the tenant mix."""
        return WorkloadSpec(
            name=self.name,
            median_input_length=sum(t.share * t.workload.median_input_length for t in self.tiers),
            median_output_length=sum(t.share * t.workload.median_output_length for t in self.tiers),
            input_sigma=max(t.workload.input_sigma for t in self.tiers),
            output_sigma=max(t.workload.output_sigma for t in self.tiers),
        )

    def slo_scale(self) -> float:
        """The tightest tier's scale — the contract hardest to keep."""
        return min(t.slo_scale for t in self.tiers)


@dataclass(frozen=True)
class SpotPreemptionScenario(Scenario):
    """Steady traffic with spot-instance preemptions injected mid-run.

    At each preemption fraction of the trace, ``gpus_per_preemption`` GPUs are
    reclaimed; the serving system must absorb the loss by replanning between
    windows (Figure 11) with the strategy named by ``reschedule_mode`` —
    ``"lightweight"`` (§3.4 flip-only, the default), ``"full"`` (re-run the
    scheduler, parameters reload) or ``"none"`` (drop dead groups).  Victims
    are chosen by the sweep at event time from whatever is still alive,
    mirroring how providers reclaim spot capacity.
    """

    name: ClassVar[str] = "spot-preemption"
    description: ClassVar[str] = "spot-instance GPU preemptions mid-run"

    #: replan strategies accepted by ``reschedule_mode``
    RESCHEDULE_MODES: ClassVar[Tuple[str, ...]] = ("lightweight", "full", "none")

    request_rate: float = 4.0
    duration: float = 120.0
    preemption_fractions: Tuple[float, ...] = (0.4, 0.7)
    gpus_per_preemption: int = 2
    workload: WorkloadSpec = CONVERSATION_WORKLOAD
    reschedule_mode: str = "lightweight"

    def __post_init__(self) -> None:
        if self.gpus_per_preemption < 1:
            raise ValueError("gpus_per_preemption must be >= 1")
        for f in self.preemption_fractions:
            if not 0 < f < 1:
                raise ValueError("preemption fractions must be in (0, 1)")
        if self.reschedule_mode not in self.RESCHEDULE_MODES:
            raise ValueError(
                f"reschedule_mode must be one of {self.RESCHEDULE_MODES}, "
                f"got {self.reschedule_mode!r}"
            )

    def build_trace(self, seed: RNGLike = None) -> Trace:
        """Sample steady Poisson arrivals (the disruption is the preemptions)."""
        gen = PoissonArrivalGenerator(self.workload, self.request_rate, seed=seed)
        trace = gen.generate(duration=self.duration)
        return Trace(requests=trace.requests, name=self.name)

    def planning_workload(self) -> WorkloadSpec:
        """The workload the scheduler plans for (traffic itself is steady)."""
        return self.workload

    def failure_schedule(self) -> Tuple[FailureEvent, ...]:
        """One :class:`FailureEvent` per preemption fraction, in time order."""
        return tuple(
            FailureEvent(
                time=f * self.duration,
                num_gpus=self.gpus_per_preemption,
                description=f"spot preemption at {f:.0%} of the trace",
            )
            for f in sorted(self.preemption_fractions)
        )

    def rescheduling_mode(self) -> str:
        """The configured per-scenario replan strategy (``reschedule_mode``)."""
        return self.reschedule_mode


__all__ = [
    "RAG_WORKLOAD",
    "LONG_PROMPT_RAG_WORKLOAD",
    "DEFAULT_TIERS",
    "TenantTier",
    "DiurnalTrafficScenario",
    "BurstySpikesScenario",
    "LongContextRAGScenario",
    "LongPromptRAGScenario",
    "AgenticCodingMixScenario",
    "MultiTenantSLOTiersScenario",
    "SpotPreemptionScenario",
]

"""Named workload scenarios and the cross-scenario sweep runner.

This package is the repo's answer to "as many scenarios as you can imagine": a
library of named, parameterized workload situations built on the workload
generators, plus :class:`ScenarioSweep`, which evaluates one deployment plan
across the whole library concurrently.

Quick use::

    from repro.scenarios import ScenarioSweep, default_scenarios, get_scenario

    sweep = ScenarioSweep(default_scenarios(duration=60.0))
    outcomes = sweep.evaluate(cluster, model, plan)
    print(ScenarioSweep.to_table(outcomes))

    rag = get_scenario("long-context-rag", request_rate=3.0, duration=30.0)
    trace = rag.build_trace(seed=0)
"""

from repro.scenarios.base import FailureEvent, Scenario, thinned_poisson_trace
from repro.scenarios.library import (
    DEFAULT_TIERS,
    LONG_PROMPT_RAG_WORKLOAD,
    RAG_WORKLOAD,
    AgenticCodingMixScenario,
    BurstySpikesScenario,
    DiurnalTrafficScenario,
    LongContextRAGScenario,
    LongPromptRAGScenario,
    MultiTenantSLOTiersScenario,
    SpotPreemptionScenario,
    TenantTier,
)
from repro.scenarios.registry import (
    default_scenarios,
    get_scenario,
    list_scenarios,
    register_scenario,
)
from repro.scenarios.sweep import ScenarioOutcome, ScenarioSweep

__all__ = [
    "Scenario",
    "FailureEvent",
    "thinned_poisson_trace",
    "RAG_WORKLOAD",
    "LONG_PROMPT_RAG_WORKLOAD",
    "DEFAULT_TIERS",
    "TenantTier",
    "DiurnalTrafficScenario",
    "BurstySpikesScenario",
    "LongContextRAGScenario",
    "LongPromptRAGScenario",
    "AgenticCodingMixScenario",
    "MultiTenantSLOTiersScenario",
    "SpotPreemptionScenario",
    "register_scenario",
    "list_scenarios",
    "get_scenario",
    "default_scenarios",
    "ScenarioSweep",
    "ScenarioOutcome",
]

"""ScenarioSweep: evaluate one deployment plan across the whole scenario library.

The sweep schedules once (or adopts a caller-provided plan) and then serves every
scenario concurrently on its own :class:`~repro.serving.system.ThunderServe`
instance via ``concurrent.futures`` — scenarios are independent simulations over
immutable shared inputs (cluster, model, plan), so both thread- and process-level
parallelism are safe.  ``executor="process"`` runs each scenario in its own
interpreter (plans, clusters and scenarios are picklable value objects), letting
long multi-scenario sweeps escape the GIL — the simulators are pure Python, so
threads serialise on long traces.  Failure-injection scenarios are served
segment-by-segment: each :class:`~repro.scenarios.base.FailureEvent` is compiled
into a replica-level fault timeline the engine applies *inside* the segment's
run (preempting in-flight work at the exact fault instant, retried under the
sweep's :class:`~repro.faults.RetryPolicy`), lightweight rescheduling runs
between segments, and the per-segment results are merged into one scenario
outcome.
"""

from __future__ import annotations

import time
import zlib
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.exceptions import ConfigurationError, SchedulingError
from repro.core.rng import ensure_rng
from repro.core.types import RequestMetrics, RequestOutcome, SLOType
from repro.costmodel.latency import CostModelParams, DEFAULT_PARAMS
from repro.costmodel.reference import a100_reference_latency
from repro.faults.retry import RetryPolicy
from repro.faults.taxonomy import FaultEvent, FaultKind, FaultSchedule
from repro.faults.timeline import compile_fault_timeline
from repro.hardware.cluster import Cluster
from repro.model.architecture import ModelConfig
from repro.scenarios.base import Scenario
from repro.scenarios.library import MultiTenantSLOTiersScenario
from repro.scenarios.registry import default_scenarios
from repro.scheduling.deployment import DeploymentPlan
from repro.scheduling.rescheduling import ReschedulingOverheadModel
from repro.scheduling.robust import scenario_slo
from repro.scheduling.scheduler import SchedulerConfig
from repro.serving.live import LiveServeConfig, LiveServer, WindowTelemetry
from repro.serving.system import ThunderServe
from repro.simulation.engine import SimulatorConfig
from repro.simulation.metrics import SimulationResult, merge_results
from repro.utils.tables import format_table
from repro.workload.trace import Trace


@dataclass
class ScenarioOutcome:
    """Aggregate result of serving one scenario with one deployment plan."""

    scenario: str
    description: str
    num_requests: int
    num_finished: int
    slo_scale: float
    attainment_e2e: float
    attainment_ttft: float
    attainment_tpot: float
    output_token_throughput: float
    mean_e2e: float
    num_plan_changes: int
    elapsed_s: float
    #: per-tenant E2E attainment at each tenant's own SLO tier (multi-tenant only)
    per_tenant_attainment: Dict[str, float] = field(default_factory=dict)
    #: the merged simulation result, for downstream analysis
    result: Optional[SimulationResult] = None
    #: serving failure captured under ``on_error="zero"`` (None on success)
    error: Optional[str] = None
    #: per-window telemetry stream (adaptive sweeps only; empty otherwise).
    #: Workload-shift scenarios surface their per-window plan changes here:
    #: each record carries the ``plan_id`` the window was served with and
    #: whether a new plan was installed after it.
    windows: List[WindowTelemetry] = field(default_factory=list)
    #: total service interruption priced onto the scenario's replans by the
    #: Table 4 :class:`~repro.scheduling.rescheduling.ReschedulingOverheadModel`
    reschedule_overhead_s: float = 0.0
    #: failure-path windows that arrived while no capacity could serve (their
    #: requests are recorded as zero-attainment misses, not dropped silently)
    num_outage_windows: int = 0
    #: request count per :class:`~repro.core.types.RequestOutcome` name over
    #: the merged result (empty only for ``on_error="zero"`` failures)
    outcome_counts: Dict[str, int] = field(default_factory=dict)


class ScenarioSweep:
    """Run a library of scenarios against one deployment plan, concurrently.

    Parameters
    ----------
    scenarios:
        The scenarios to run; defaults to one instance of every registered
        scenario (:func:`~repro.scenarios.registry.default_scenarios`).
    seed:
        Base seed; each scenario derives its own deterministic stream from it.
    max_workers:
        Pool width (defaults to one worker per scenario).
    executor:
        ``"thread"`` (default) or ``"process"``.  Process mode serves every
        scenario in its own interpreter via :class:`ProcessPoolExecutor`,
        sidestepping the GIL for long traces; outcomes are identical because
        each scenario's seeds derive only from the sweep seed and its name.
    scheduler_config, simulator_config, params:
        Forwarded to the per-scenario serving systems.
    on_error:
        ``"raise"`` (default) propagates a scenario's serving failure and aborts
        the sweep; ``"zero"`` records a :class:`SchedulingError` as a
        zero-attainment :class:`ScenarioOutcome` (``error`` carries the
        message) and keeps the other scenarios.  Robust-mode comparisons use
        ``"zero"``: a plan that cannot survive a scenario — e.g. rescheduling
        is infeasible after a preemption — has operationally failed it, which
        is signal, not an abort-worthy exception.  Non-scheduling exceptions
        (worker crashes, pickling problems) propagate under both policies.
    adaptive:
        When ``True``, scenarios without a failure schedule are served through
        the live adaptive loop (:class:`~repro.serving.live.LiveServer`)
        instead of one batch ``serve()`` call: SLO breaches and workload
        shifts trigger lightweight rescheduling between windows, and each
        outcome's ``windows`` field carries the per-window telemetry stream
        (plan id, attainment, estimated rho, breaches).  Failure-injection
        scenarios keep their event-driven windowed path.
    live_config:
        :class:`~repro.serving.live.LiveServeConfig` for adaptive serving
        (window length, SLO-objective config, admission ceiling); defaults to
        ``LiveServeConfig()``.  Ignored unless ``adaptive`` is true.
    retry_policy:
        :class:`~repro.faults.RetryPolicy` governing the in-engine disposition
        of work preempted by a :class:`~repro.scenarios.base.FailureEvent`.
        ``None`` (default) is drop-only: preempted requests are recorded as
        ``dropped_outage``.
    """

    EXECUTORS = ("thread", "process")
    ON_ERROR = ("raise", "zero")

    def __init__(
        self,
        scenarios: Optional[Sequence[Scenario]] = None,
        seed: int = 0,
        max_workers: Optional[int] = None,
        executor: str = "thread",
        scheduler_config: Optional[SchedulerConfig] = None,
        simulator_config: Optional[SimulatorConfig] = None,
        params: CostModelParams = DEFAULT_PARAMS,
        on_error: str = "raise",
        adaptive: bool = False,
        live_config: Optional[LiveServeConfig] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.scenarios: Tuple[Scenario, ...] = (
            tuple(scenarios) if scenarios is not None else default_scenarios()
        )
        if not self.scenarios:
            raise ValueError("at least one scenario is required")
        names = [s.name for s in self.scenarios]
        if len(set(names)) != len(names):
            raise ValueError(f"scenario names must be unique, got {names}")
        if executor not in self.EXECUTORS:
            raise ValueError(f"executor must be one of {self.EXECUTORS}, got {executor!r}")
        if on_error not in self.ON_ERROR:
            raise ValueError(f"on_error must be one of {self.ON_ERROR}, got {on_error!r}")
        self.on_error = on_error
        self.seed = seed
        self.max_workers = max_workers
        self.executor = executor
        self.scheduler_config = scheduler_config
        self.simulator_config = simulator_config
        self.params = params
        self.adaptive = adaptive
        self.live_config = live_config
        self.retry_policy = retry_policy

    # ------------------------------------------------------------------ seeds
    def _derive_seed(self, text: str, salt: str) -> int:
        """Deterministic seed from the sweep seed and a label, per purpose."""
        digest = zlib.crc32(f"{salt}:{text}".encode())
        return (self.seed * 1000003 + digest) % (2**31 - 1)

    def _scenario_seed(self, scenario: Scenario) -> int:
        """Per-scenario trace seed, independent of sweep composition."""
        return self._derive_seed(scenario.name, "trace")

    # ------------------------------------------------------------------ evaluate
    def evaluate(
        self,
        cluster: Cluster,
        model: ModelConfig,
        plan: DeploymentPlan,
    ) -> Dict[str, ScenarioOutcome]:
        """Serve every scenario with ``plan`` and return outcomes keyed by name."""
        workers = max(1, self.max_workers or len(self.scenarios))
        pool_cls = ProcessPoolExecutor if self.executor == "process" else ThreadPoolExecutor
        with pool_cls(max_workers=workers) as pool:
            futures = {
                scenario: pool.submit(_run_scenario, self, scenario, cluster, model, plan)
                for scenario in self.scenarios
            }
            outcomes: Dict[str, ScenarioOutcome] = {}
            for scenario, fut in futures.items():
                try:
                    outcomes[scenario.name] = fut.result()
                except SchedulingError as exc:
                    # Only the documented serving-failure class is demoted to a
                    # zero outcome; infrastructure errors (broken pools, pickle
                    # failures) always propagate — a scenario that never ran is
                    # not a scenario the plan failed.
                    if self.on_error == "raise":
                        raise
                    outcomes[scenario.name] = self._failed_outcome(scenario, exc)
            return outcomes

    def _failed_outcome(self, scenario: Scenario, exc: Exception) -> ScenarioOutcome:
        """Zero-attainment outcome for a scenario the plan could not survive."""
        return ScenarioOutcome(
            scenario=scenario.name,
            description=scenario.description,
            num_requests=0,
            num_finished=0,
            slo_scale=scenario.slo_scale(),
            attainment_e2e=0.0,
            attainment_ttft=0.0,
            attainment_tpot=0.0,
            output_token_throughput=0.0,
            mean_e2e=float("inf"),
            num_plan_changes=0,
            elapsed_s=0.0,
            error=f"{type(exc).__name__}: {exc}",
        )

    def _build_system(
        self, scenario: Scenario, cluster: Cluster, model: ModelConfig
    ) -> ThunderServe:
        workload = scenario.planning_workload()
        # The scenario's own SLO tier must govern any mid-run rescheduling, not
        # ThunderServe's default 5x reference scale.  The derivation is shared
        # with robust scheduling so the optimised objective and the served
        # attainment measure the same contract.
        slo = scenario_slo(scenario, model, params=self.params)
        return ThunderServe(
            cluster,
            model,
            workload,
            scenario.request_rate,
            slo=slo,
            scheduler_config=self.scheduler_config,
            simulator_config=self.simulator_config,
            params=self.params,
        )

    def _run_one(
        self,
        scenario: Scenario,
        cluster: Cluster,
        model: ModelConfig,
        plan: DeploymentPlan,
    ) -> ScenarioOutcome:
        start = time.perf_counter()
        trace = scenario.build_trace(seed=self._scenario_seed(scenario))
        system = self._build_system(scenario, cluster, model)
        system.adopt_plan(plan, reason=f"scenario sweep: {scenario.name}")
        # Plan changes are installs *after* the adoption just recorded — counted
        # against this snapshot rather than by subtracting a hard-coded 1, so a
        # system serving without a prior install can never go negative.
        installs_at_adoption = sum(1 for e in system.events if e.kind == "plan_installed")

        events = sorted(scenario.failure_schedule(), key=lambda e: e.time)
        windows: List[WindowTelemetry] = []
        reschedule_overhead_s = 0.0
        num_outage_windows = 0
        if events:
            self._validate_failure_schedule(scenario, events, cluster)
            result, reschedule_overhead_s, num_outage_windows = self._serve_with_failures(
                system, trace, events, scenario.name, mode=scenario.rescheduling_mode()
            )
        elif self.adaptive:
            live = LiveServer(system, config=self.live_config)
            live_report = live.run(trace, label=scenario.name)
            result = live_report.merged
            windows = live_report.windows
        else:
            result = system.serve(trace, label=scenario.name)

        slo = system.reference.slo_spec(scenario.slo_scale())
        per_tenant: Dict[str, float] = {}
        if isinstance(scenario, MultiTenantSLOTiersScenario):
            per_tenant = self._tenant_attainment(scenario, result, model)
        installs = sum(1 for e in system.events if e.kind == "plan_installed")
        plan_changes = max(0, installs - installs_at_adoption)
        return ScenarioOutcome(
            scenario=scenario.name,
            description=scenario.description,
            num_requests=result.num_requests,
            num_finished=result.num_finished,
            slo_scale=scenario.slo_scale(),
            attainment_e2e=result.slo_attainment(slo, SLOType.E2E),
            attainment_ttft=result.slo_attainment(slo, SLOType.TTFT),
            attainment_tpot=result.slo_attainment(slo, SLOType.TPOT),
            output_token_throughput=result.output_token_throughput,
            mean_e2e=result.mean(SLOType.E2E),
            num_plan_changes=plan_changes,
            elapsed_s=time.perf_counter() - start,
            per_tenant_attainment=per_tenant,
            result=result,
            windows=windows,
            reschedule_overhead_s=reschedule_overhead_s,
            num_outage_windows=num_outage_windows,
            outcome_counts={k: int(v) for k, v in result.outcome_counts().items()},
        )

    def _validate_failure_schedule(
        self, scenario: Scenario, events, cluster: Cluster
    ) -> None:
        """Reject malformed failure schedules before any window is served.

        Raises
        ------
        ConfigurationError
            When an event fires at/after the trace duration (it would never
            take effect), pins GPU ids the cluster does not have, or asks for
            more victims than the cluster holds.
        """
        available = set(cluster.gpu_ids)
        for event in events:
            if event.time >= scenario.duration:
                raise ConfigurationError(
                    f"scenario {scenario.name!r}: failure event at t={event.time:g}s "
                    f"is at/after the trace duration ({scenario.duration:g}s) "
                    "and would never fire"
                )
            if event.gpu_ids is not None:
                unknown = sorted(set(event.gpu_ids) - available)
                if unknown:
                    raise ConfigurationError(
                        f"scenario {scenario.name!r}: failure event at "
                        f"t={event.time:g}s pins GPU ids {unknown} that are not "
                        f"in the cluster (available: {sorted(available)})"
                    )
            elif event.num_gpus > cluster.num_gpus:
                raise ConfigurationError(
                    f"scenario {scenario.name!r}: failure event at t={event.time:g}s "
                    f"asks for {event.num_gpus} victims but the cluster only has "
                    f"{cluster.num_gpus} GPUs"
                )

    def _serve_with_failures(
        self,
        system: ThunderServe,
        trace: Trace,
        events,
        label: str,
        mode: str = "lightweight",
    ) -> Tuple[SimulationResult, float, int]:
        """Serve a trace segment-by-segment with in-engine fault application.

        Each :class:`~repro.scenarios.base.FailureEvent` is resolved to victim
        GPUs, compiled into a replica-level fault timeline against the plan
        currently serving, and handed to the engine together with the segment
        of arrivals preceding it — so work still in flight at the fault
        instant is preempted *inside* the run and disposed under the sweep's
        :class:`~repro.faults.RetryPolicy` instead of finishing on hardware
        that no longer exists.  Between segments ``mode`` selects the replan
        strategy (see :meth:`~repro.serving.system.ThunderServe.replan_capacity`);
        each successful replan is priced with the Table 4
        :class:`~repro.scheduling.rescheduling.ReschedulingOverheadModel`.  A
        strategy that cannot produce a servable plan falls back to dropping
        dead groups, and a total capacity loss — reachable by count-based
        events asking for every surviving GPU — degrades gracefully: the
        remaining segments are recorded as zero-attainment outages (every
        arrival a ``dropped_outage`` miss) instead of aborting the sweep.

        Returns
        -------
        Tuple[SimulationResult, float, int]
            The merged result, the total priced rescheduling overhead in
            seconds, and the number of outage windows.
        """
        rng = ensure_rng(self._derive_seed(label, "failures"))
        overhead_model = ReschedulingOverheadModel()
        results: List[SimulationResult] = []
        overhead_s = 0.0
        outage_windows = 0
        dead = False
        window_start = float("-inf")
        for k, event in enumerate(events):
            window = trace.window(window_start, event.time)
            window_start = event.time
            if dead:
                if not window.is_empty:
                    results.append(_outage_result(window, f"{label}[{k}]"))
                    outage_windows += 1
                continue
            alive = sorted(system.cluster.gpu_ids)
            if event.gpu_ids is not None:
                victims = [g for g in event.gpu_ids if g in alive]
            else:
                count = min(event.num_gpus, len(alive))
                victims = [int(g) for g in rng.choice(alive, size=count, replace=False)]
            if not window.is_empty:
                faults = None
                if victims:
                    schedule = FaultSchedule.from_events(
                        [
                            FaultEvent(
                                time=event.time,
                                kind=FaultKind.GPU_PREEMPTION,
                                gpu_ids=tuple(victims),
                            )
                        ]
                    )
                    faults = (
                        compile_fault_timeline(schedule, system.require_plan()) or None
                    )
                results.append(
                    system.serve(
                        window,
                        label=f"{label}[{k}]",
                        faults=faults,
                        retry=self.retry_policy,
                    )
                )
            if not victims:
                continue
            if len(victims) >= len(alive):
                # Total capacity loss: nothing left to replan onto.
                dead = True
                continue
            try:
                plan = system.handle_gpu_failure(victims, mode=mode)
                actual_mode = mode
            except SchedulingError:
                # The cluster already shrank; keep whatever groups survived.
                try:
                    plan = system.replan_capacity(
                        mode="none", reason=f"fallback after {mode} replan failed"
                    )
                    actual_mode = "none"
                except SchedulingError:
                    dead = True
                    continue
            if actual_mode == "lightweight":
                overhead_s += overhead_model.lightweight_overhead_seconds()
            elif actual_mode == "full":
                overhead_s += overhead_model.full_overhead_seconds(
                    system.model, system.cluster.num_gpus, len(plan.groups)
                )
        tail = trace.window(window_start, float("inf"))
        if not tail.is_empty:
            if dead:
                results.append(_outage_result(tail, f"{label}[tail]"))
                outage_windows += 1
            else:
                results.append(system.serve(tail, label=f"{label}[tail]"))
        return merge_results(results, label=label), overhead_s, outage_windows

    def _tenant_attainment(
        self,
        scenario: MultiTenantSLOTiersScenario,
        result: SimulationResult,
        model: ModelConfig,
    ) -> Dict[str, float]:
        """E2E attainment of each tenant's requests at its own SLO tier."""
        per_tenant: Dict[str, float] = {}
        for tier in scenario.tiers:
            tag = f"tenant:{tier.tenant}"
            metrics = [m for m in result.metrics if m.request.workload == tag]
            if not metrics:
                per_tenant[tier.tenant] = 0.0
                continue
            reference = a100_reference_latency(model, tier.workload, params=self.params)
            slo = reference.slo_spec(tier.slo_scale)
            hits = sum(1 for m in metrics if slo.is_met(m, SLOType.E2E))
            per_tenant[tier.tenant] = hits / len(metrics)
        return per_tenant

    # ------------------------------------------------------------------ reporting
    @staticmethod
    def summarize(outcomes: Dict[str, ScenarioOutcome]) -> Dict[str, object]:
        """Cross-scenario aggregate of a sweep.

        This is the served-side counterpart of the robust objective — the
        ``robust_vs_static`` experiment reports both so the estimator-optimised
        worst case can be checked against the simulated one.

        Returns
        -------
        dict
            ``worst_scenario`` (name of the lowest-E2E-attainment scenario),
            ``worst_attainment`` / ``mean_attainment`` (its and the mean E2E
            attainment), ``plan_changes`` (per-scenario mapping of the
            mid-serve plan-change counter — installs after plan adoption,
            i.e. every lightweight rescheduling the scenario triggered) and
            ``total_plan_changes`` (their sum across the sweep).
        """
        if not outcomes:
            raise ValueError("cannot summarize an empty sweep")
        worst = min(outcomes, key=lambda name: outcomes[name].attainment_e2e)
        values = [o.attainment_e2e for o in outcomes.values()]
        plan_changes = {name: o.num_plan_changes for name, o in sorted(outcomes.items())}
        return {
            "worst_scenario": worst,
            "worst_attainment": outcomes[worst].attainment_e2e,
            "mean_attainment": sum(values) / len(values),
            "plan_changes": plan_changes,
            "total_plan_changes": sum(plan_changes.values()),
        }

    @staticmethod
    def to_table(outcomes: Dict[str, ScenarioOutcome], precision: int = 3) -> str:
        """Render sweep outcomes as an aligned text table."""
        headers = [
            "scenario", "requests", "finished", "slo_scale",
            "att_e2e", "att_ttft", "att_tpot", "tok/s", "plan_changes",
        ]
        rows = [
            [
                o.scenario, o.num_requests, o.num_finished, o.slo_scale,
                o.attainment_e2e, o.attainment_ttft, o.attainment_tpot,
                o.output_token_throughput, o.num_plan_changes,
            ]
            for _, o in sorted(outcomes.items())
        ]
        return format_table(headers, rows, precision=precision, title="Scenario sweep")


def _outage_result(window: Trace, label: str) -> SimulationResult:
    """Zero-attainment result of a window that arrived during a total outage.

    Every arrival becomes an unfinished :class:`~repro.core.types.RequestMetrics`
    record with outcome ``dropped_outage``, which the attainment accounting
    counts as an SLO miss — the window reports attainment 0 without losing its
    requests from the merged result.
    """
    metrics = [
        RequestMetrics(request=request, outcome=RequestOutcome.DROPPED_OUTAGE)
        for request in window
    ]
    arrivals = [request.arrival_time for request in window]
    duration = (max(arrivals) - min(arrivals)) if len(arrivals) >= 2 else 0.0
    return SimulationResult(
        metrics=metrics,
        makespan=max(arrivals) if arrivals else 0.0,
        trace_duration=duration,
        label=label,
    )


def _run_scenario(
    sweep: ScenarioSweep,
    scenario: Scenario,
    cluster: Cluster,
    model: ModelConfig,
    plan: DeploymentPlan,
) -> ScenarioOutcome:
    """Module-level worker so process pools can pickle tasks under any start method."""
    return sweep._run_one(scenario, cluster, model, plan)


__all__ = ["ScenarioSweep", "ScenarioOutcome"]

"""Scenario abstraction: named, parameterized workload situations.

A :class:`Scenario` bundles everything needed to exercise a deployment plan under
one operating condition: how requests arrive over time (:meth:`Scenario.build_trace`),
which workload shape the scheduler should plan for
(:meth:`Scenario.planning_workload`), how tight the SLO tier is
(:meth:`Scenario.slo_scale`) and, for failure-injection scenarios, when GPUs are
preempted (:meth:`Scenario.failure_schedule`).

Scenarios are deterministic under a fixed seed: the same seed always yields the
same trace, which is what lets the scenario test-suite assert golden invariants
and the :class:`~repro.scenarios.sweep.ScenarioSweep` produce reproducible
comparisons.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, ClassVar, List, Optional, Tuple

from repro.core.rng import RNGLike, ensure_rng
from repro.core.types import Request
from repro.workload.spec import WorkloadSpec
from repro.workload.trace import Trace


@dataclass(frozen=True)
class FailureEvent:
    """One GPU-preemption event inside a scenario.

    ``gpu_ids`` pins the exact GPUs to fail; when ``None`` the sweep picks
    ``num_gpus`` deterministic victims from the cluster alive at that time (spot
    preemptions strike whatever instances the provider reclaims, not GPUs the
    scenario author could name up front).
    """

    time: float
    num_gpus: int = 1
    gpu_ids: Optional[Tuple[int, ...]] = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("failure time must be >= 0")
        if self.gpu_ids is None and self.num_gpus < 1:
            raise ValueError("num_gpus must be >= 1 when gpu_ids is not pinned")


class Scenario(abc.ABC):
    """One named workload situation a deployment plan can be evaluated under."""

    #: registry name of the scenario (stable across parameterizations)
    name: ClassVar[str] = "scenario"
    #: one-line human description shown in sweep reports
    description: ClassVar[str] = ""

    #: planned mean arrival rate in requests/s (subclasses declare the field)
    request_rate: float
    #: length of the generated trace in seconds
    duration: float

    @abc.abstractmethod
    def build_trace(self, seed: RNGLike = None) -> Trace:
        """Generate the scenario's request trace (deterministic under ``seed``)."""

    @abc.abstractmethod
    def planning_workload(self) -> WorkloadSpec:
        """Workload shape the scheduler should plan for under this scenario."""

    def slo_scale(self) -> float:
        """SLO tier of the scenario as a multiple of the A100 reference latency."""
        return 5.0

    def failure_schedule(self) -> Tuple[FailureEvent, ...]:
        """GPU preemption events injected while the trace is being served."""
        return ()

    def rescheduling_mode(self) -> str:
        """Capacity-replan strategy applied after each failure event.

        One of the Figure 11 strategies accepted by
        :meth:`~repro.serving.system.ThunderServe.replan_capacity`:
        ``"lightweight"`` (§3.4 flip-only rescheduling, the default),
        ``"full"`` (re-run the whole scheduler, parameters reload) or
        ``"none"`` (drop dead serving groups and keep the rest).
        """
        return "lightweight"

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        return (
            f"{self.name}: {self.description} "
            f"({self.request_rate:g} req/s over {self.duration:g}s)"
        )


def thinned_poisson_trace(
    spec: WorkloadSpec,
    rate_fn: Callable[[float], float],
    max_rate: float,
    duration: float,
    seed: RNGLike = None,
    name: Optional[str] = None,
) -> Trace:
    """Non-homogeneous Poisson trace with instantaneous rate ``rate_fn(t)``.

    Uses Lewis-Shedler thinning: homogeneous candidate arrivals at ``max_rate``
    are kept with probability ``rate_fn(t) / max_rate``, which realises any rate
    profile bounded by ``max_rate`` exactly (diurnal cycles, bursts, ramps).
    """
    if max_rate <= 0:
        raise ValueError("max_rate must be positive")
    if duration <= 0:
        raise ValueError("duration must be positive")
    rng = ensure_rng(seed)
    arrivals: List[float] = []
    t = 0.0
    chunk = max(16, int(max_rate * duration * 0.5) + 8)
    while t < duration:
        gaps = rng.exponential(1.0 / max_rate, size=chunk)
        accepts = rng.random(size=chunk)
        for gap, u in zip(gaps, accepts):
            t += gap
            if t >= duration:
                break
            rate = rate_fn(t)
            if rate < 0 or rate > max_rate:
                raise ValueError(
                    f"rate_fn({t:.3f}) = {rate:g} outside [0, max_rate={max_rate:g}]"
                )
            if u * max_rate <= rate:
                arrivals.append(t)

    n = len(arrivals)
    inputs = spec.sample_input_lengths(n, rng)
    outputs = spec.sample_output_lengths(n, rng)
    requests = [
        Request(
            request_id=i,
            arrival_time=float(arrivals[i]),
            input_length=int(inputs[i]),
            output_length=int(outputs[i]),
            workload=spec.name,
        )
        for i in range(n)
    ]
    return Trace(requests=requests, name=name or spec.name)


__all__ = ["Scenario", "FailureEvent", "thinned_poisson_trace"]

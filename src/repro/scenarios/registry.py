"""Scenario registry: look up, list and instantiate scenarios by name."""

from __future__ import annotations

from typing import Dict, List, Tuple, Type

from repro.scenarios.base import Scenario
from repro.scenarios.library import (
    AgenticCodingMixScenario,
    BurstySpikesScenario,
    DiurnalTrafficScenario,
    LongContextRAGScenario,
    LongPromptRAGScenario,
    MultiTenantSLOTiersScenario,
    SpotPreemptionScenario,
)


_REGISTRY: Dict[str, Type[Scenario]] = {}


def register_scenario(cls: Type[Scenario]) -> Type[Scenario]:
    """Register a scenario class under its ``name`` (also usable as a decorator).

    Names are stored case-folded so lookups through :func:`get_scenario` (which
    normalises its argument the same way) always find registered scenarios.
    """
    name = cls.name.strip().lower()
    if not name or name == Scenario.name:
        raise ValueError(f"{cls.__name__} must define a distinct `name` class attribute")
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(f"scenario name {name!r} already registered by {existing.__name__}")
    _REGISTRY[name] = cls
    return cls


for _cls in (
    DiurnalTrafficScenario,
    BurstySpikesScenario,
    LongContextRAGScenario,
    LongPromptRAGScenario,
    AgenticCodingMixScenario,
    MultiTenantSLOTiersScenario,
    SpotPreemptionScenario,
):
    register_scenario(_cls)


def list_scenarios() -> List[str]:
    """Names of all registered scenarios, sorted."""
    return sorted(_REGISTRY)


def get_scenario(name: str, **params) -> Scenario:
    """Instantiate a registered scenario by name, overriding fields via ``params``."""
    key = name.strip().lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown scenario {name!r}; known: {list_scenarios()}")
    return _REGISTRY[key](**params)


def default_scenarios(
    duration: float = 120.0, rate_scale: float = 1.0
) -> Tuple[Scenario, ...]:
    """One instance of every registered scenario at its default parameterization.

    ``duration`` overrides every scenario's trace length and ``rate_scale``
    multiplies its default request rate — the sweeps use these to dial one knob
    for the whole library (short smoke runs vs. long soak runs).
    """
    scenarios = []
    for name in list_scenarios():
        cls = _REGISTRY[name]
        defaults = cls()
        scenarios.append(
            cls(request_rate=defaults.request_rate * rate_scale, duration=duration)
        )
    return tuple(scenarios)


__all__ = ["register_scenario", "list_scenarios", "get_scenario", "default_scenarios"]

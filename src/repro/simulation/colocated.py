"""Simulator for co-locating (non-phase-splitting) deployments.

vLLM-style systems (and HexGen's replicas) serve both prefill and decode on the
same model replica with continuous batching.  New prompts are prefills scheduled
*ahead of* decode iterations, which is precisely the prefill/decode interference
that phase splitting removes: while a long prompt is being prefilled, every active
sequence's next token is delayed by the full prefill latency.

The co-located simulator models each replica as a single work loop: at every step
boundary it either (a) admits and prefills up to ``max_prefill_batch_requests``
waiting requests as one batch — as many as KV memory allows — or (b) runs one
decode step for the whole active batch.  Service times come from the same
roofline cost model used everywhere else, and the prefill batching knob matches
the phase-splitting simulator's ``SimulatorConfig.max_prefill_batch_requests``
so baseline comparisons hold the batching policy constant.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.exceptions import SimulationError
from repro.core.rng import ensure_rng
from repro.core.types import Request, RequestMetrics
from repro.costmodel.latency import (
    CostModelParams,
    DEFAULT_MAX_PREFILL_BATCH_REQUESTS,
    DEFAULT_PARAMS,
    ReplicaCostModel,
)
from repro.hardware.cluster import Cluster
from repro.kvcache.paged import PagedKVCache
from repro.model.architecture import ModelConfig
from repro.parallelism.config import ReplicaPlan
from repro.simulation.events import Event, EventKind, EventQueue
from repro.simulation.metrics import SimulationResult
from repro.workload.trace import Trace


@dataclass
class _ColocatedReplica:
    """Run-time state of one co-located replica."""

    replica_id: int
    cost: ReplicaCostModel
    kv: PagedKVCache
    max_batch: int
    waiting: Deque[Request] = field(default_factory=deque)
    #: request_id -> [current context length, remaining tokens]
    active: Dict[int, List[int]] = field(default_factory=dict)
    busy: bool = False


class ColocatedSimulator:
    """Simulates co-locating replicas (the vLLM / HexGen execution model)."""

    #: Default slowdown applied to work executed while a replica is juggling both
    #: phases.  Co-locating prefill and decode forces batch re-formation, kernel
    #: interleaving and scheduler preemptions; DistServe and Splitwise measure a
    #: 20-30% efficiency loss from this interference, which phase splitting removes.
    DEFAULT_INTERFERENCE_PENALTY = 0.25

    def __init__(
        self,
        cluster: Cluster,
        replica_plans: Sequence[ReplicaPlan],
        model: ModelConfig,
        params: CostModelParams = DEFAULT_PARAMS,
        kv_block_size: int = 16,
        seed: int = 0,
        routing_weights: Optional[Sequence[float]] = None,
        interference_penalty: float = DEFAULT_INTERFERENCE_PENALTY,
        max_prefill_batch_requests: int = DEFAULT_MAX_PREFILL_BATCH_REQUESTS,
    ) -> None:
        if not replica_plans:
            raise SimulationError("at least one replica plan is required")
        if interference_penalty < 0:
            raise SimulationError("interference_penalty must be >= 0")
        if max_prefill_batch_requests < 1:
            raise SimulationError("max_prefill_batch_requests must be >= 1")
        self.cluster = cluster
        self.model = model
        self.params = params
        self.interference_penalty = interference_penalty
        self.max_prefill_batch_requests = max_prefill_batch_requests
        self._rng = ensure_rng(seed)
        self.replicas: List[_ColocatedReplica] = []
        for idx, plan in enumerate(replica_plans):
            cost = ReplicaCostModel(cluster, plan, model, params)
            capacity = cost.kv_token_capacity()
            self.replicas.append(
                _ColocatedReplica(
                    replica_id=idx,
                    cost=cost,
                    kv=PagedKVCache(num_blocks=max(0, capacity // kv_block_size), block_size=kv_block_size),
                    max_batch=params.max_decode_batch,
                )
            )
        if routing_weights is not None:
            weights = np.asarray(list(routing_weights), dtype=float)
            if weights.shape != (len(self.replicas),) or np.any(weights < 0) or weights.sum() <= 0:
                raise SimulationError("routing_weights must be non-negative, one per replica")
            self._weights = weights / weights.sum()
        else:
            # Weight replicas by their decode token capacity so heterogeneous
            # replicas receive proportionate load (HexGen-style dispatching).
            context = 1024
            caps = np.array([max(r.cost.decode_throughput(context), 1e-6) for r in self.replicas])
            self._weights = caps / caps.sum()

        self._events = EventQueue()
        self._metrics: Dict[int, RequestMetrics] = {}
        self._clock = 0.0

    # ------------------------------------------------------------------ run
    def run(self, trace: Trace, label: str = "colocated") -> SimulationResult:
        """Replay a trace and return per-request metrics."""
        self._events = EventQueue()
        self._metrics = {}
        self._clock = 0.0
        for replica in self.replicas:
            replica.waiting.clear()
            replica.active.clear()
            replica.kv.reset()
            replica.busy = False
        for request in trace:
            self._events.push(Event(time=request.arrival_time, kind=EventKind.ARRIVAL, payload=request))

        while self._events:
            event = self._events.pop()
            self._clock = max(self._clock, event.time)
            if event.kind is EventKind.ARRIVAL:
                self._on_arrival(event.payload, event.time)
            elif event.kind is EventKind.REPLICA_STEP:
                self._on_step_done(event.replica_id, event.payload, event.time)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unexpected event kind {event.kind}")

        metrics = [self._metrics[rid] for rid in sorted(self._metrics)]
        return SimulationResult(
            metrics=metrics,
            makespan=self._clock,
            trace_duration=trace.duration,
            label=label,
        )

    # ------------------------------------------------------------------ handlers
    def _on_arrival(self, request: Request, now: float) -> None:
        idx = int(self._rng.choice(len(self.replicas), p=self._weights))
        replica = self.replicas[idx]
        metrics = RequestMetrics(request=request, enqueue_time=now)
        metrics.prefill_replica = idx
        metrics.decode_replica = idx
        self._metrics[request.request_id] = metrics
        replica.waiting.append(request)
        if not replica.busy:
            self._schedule_work(replica, now)

    def _interference_factor(self, replica: _ColocatedReplica) -> float:
        """Slowdown applied when the replica is serving both phases at once."""
        mixed = bool(replica.waiting) and bool(replica.active)
        return 1.0 + self.interference_penalty if mixed else 1.0

    def _schedule_work(self, replica: _ColocatedReplica, now: float) -> None:
        """Pick the next unit of work (prefill beats decode, as in vLLM's scheduler)."""
        factor = self._interference_factor(replica)
        # Try to admit waiting requests first — up to max_prefill_batch_requests
        # of them as one batched prefill, as many as KV memory and the
        # continuous-batching slot limit allow (FIFO, stop at the first misfit).
        if replica.waiting and len(replica.active) < replica.max_batch:
            batch: List[Request] = []
            planned_blocks = 0
            while (
                replica.waiting
                and len(batch) < self.max_prefill_batch_requests
                and len(replica.active) + len(batch) < replica.max_batch
            ):
                request = replica.waiting[0]
                needed = replica.kv.blocks_needed(request.total_tokens)
                if planned_blocks + needed > replica.kv.free_blocks:
                    break
                replica.waiting.popleft()
                planned_blocks += needed
                batch.append(request)
            if batch:
                replica.busy = True
                max_input = max(r.input_length for r in batch)
                latency = (
                    replica.cost.prefill_latency(max_input, batch_size=len(batch)) * factor
                )
                for request in batch:
                    self._metrics[request.request_id].prefill_start = now
                self._events.push(
                    Event(
                        time=now + latency,
                        kind=EventKind.REPLICA_STEP,
                        replica_id=replica.replica_id,
                        payload=("prefill", batch),
                    )
                )
                return
        if replica.active:
            replica.busy = True
            batch = len(replica.active)
            mean_context = int(np.mean([state[0] for state in replica.active.values()]))
            latency = replica.cost.decode_step_latency(batch, max(1, mean_context)) * factor
            self._events.push(
                Event(
                    time=now + latency,
                    kind=EventKind.REPLICA_STEP,
                    replica_id=replica.replica_id,
                    payload=("decode", None),
                )
            )
            return
        replica.busy = False

    def _on_step_done(self, replica_id: int, payload: Tuple[str, Optional[List[Request]]], now: float) -> None:
        replica = self.replicas[replica_id]
        kind, batch = payload
        if kind == "prefill":
            assert batch is not None
            for request in batch:
                metrics = self._metrics[request.request_id]
                metrics.first_token_time = now
                metrics.kv_transfer_done = now  # co-located: no transfer
                if request.output_length <= 1:
                    metrics.completion_time = now
                    metrics.finished = True
                else:
                    replica.kv.allocate(request.request_id, request.total_tokens)
                    replica.active[request.request_id] = [
                        request.input_length + 1,
                        request.output_length - 1,
                    ]
        else:
            finished_ids: List[int] = []
            for request_id, state in replica.active.items():
                state[0] += 1
                state[1] -= 1
                if state[1] <= 0:
                    finished_ids.append(request_id)
            for request_id in finished_ids:
                del replica.active[request_id]
                replica.kv.free(request_id)
                metrics = self._metrics[request_id]
                metrics.completion_time = now
                metrics.finished = True
        self._schedule_work(replica, now)


__all__ = ["ColocatedSimulator"]

"""Event types and the time-ordered event queue of the simulator."""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.exceptions import SimulationError


class EventKind(str, enum.Enum):
    """Kinds of simulation events."""

    ARRIVAL = "arrival"
    PREFILL_DONE = "prefill_done"
    KV_ARRIVED = "kv_arrived"
    DECODE_STEP = "decode_step"
    #: end of a coalesced multi-step decode epoch (fast engine); the payload is
    #: the epoch sequence number so truncated epochs can invalidate stale wakes
    DECODE_WAKE = "decode_wake"
    #: completion of one batch inside a coalesced prefill epoch (fast engine);
    #: the payload is (epoch sequence number, batch index) so arrival-truncated
    #: epochs can invalidate the events of their cancelled batches
    PREFILL_BATCH = "prefill_batch"
    #: a coalesced array of KV-cache arrivals for one decode replica (fast
    #: engine); the payload is a mutable batch cursor drained in arrival order
    KV_BATCH = "kv_batch"
    #: re-dispatch of a request after a fault-triggered backoff delay; the
    #: payload identifies the request (row index in the fast engine, the
    #: :class:`~repro.core.types.Request` in the reference engine)
    RETRY = "retry"
    REPLICA_STEP = "replica_step"  # co-located replicas (vLLM/HexGen baselines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, order=False)
class Event:
    """A single simulation event.

    Events are ordered by time; ties are broken by an insertion sequence number so
    the simulation is fully deterministic.
    """

    time: float
    kind: EventKind
    #: replica (group) id the event belongs to, if any
    replica_id: Optional[int] = None
    #: request id the event belongs to, if any
    request_id: Optional[int] = None
    #: free-form payload (e.g. the batch of requests finishing prefill)
    payload: Any = None


class EventQueue:
    """Min-heap of events keyed by (time, sequence number)."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()

    def push(self, event: Event) -> int:
        """Insert an event; returns the assigned tie-breaking sequence number."""
        if event.time < 0:
            raise SimulationError(f"event time must be >= 0, got {event.time}")
        seq = next(self._counter)
        heapq.heappush(self._heap, (event.time, seq, event))
        return seq

    def repush(self, event: Event, seq: int) -> None:
        """Re-insert an event under a previously assigned sequence number.

        Coalesced batch events (``KV_BATCH``) drain several logical arrivals;
        when a later arrival must yield to another heap entry, the batch is
        re-inserted at that arrival's time *keeping its original sequence
        number*, so exact-time ties keep resolving exactly as they would for
        the per-arrival events the batch replaces.
        """
        if event.time < 0:
            raise SimulationError(f"event time must be >= 0, got {event.time}")
        heapq.heappush(self._heap, (event.time, seq, event))

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        return heapq.heappop(self._heap)[2]

    def peek_time(self) -> Optional[float]:
        """Time of the earliest event, or ``None`` when empty."""
        return self._heap[0][0] if self._heap else None

    def peek_key(self) -> Optional[tuple[float, int]]:
        """(time, sequence number) of the earliest event, or ``None`` when empty."""
        return self._heap[0][:2] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


__all__ = ["Event", "EventKind", "EventQueue"]

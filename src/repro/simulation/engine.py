"""Discrete-event simulator for phase-splitting deployments.

The simulator replays a request trace against a :class:`DeploymentPlan`:

1. arrivals are dispatched to a prefill replica and a decode replica according to
   the plan's routing policy (the ``X`` / ``Y`` of §3.3);
2. each prefill replica serves its queue in FIFO order, one batch at a time, with
   service times from the roofline cost model;
3. the resulting KV cache is transferred to the decode replica over the cluster
   network (alpha-beta model, optionally 4-bit compressed);
4. each decode replica runs continuous batching: at every step boundary it admits
   pending requests while KV-cache memory allows, then advances every active
   sequence by one token.

The per-request :class:`RequestMetrics` collected here are what the end-to-end
experiments (Figures 7–9, 11, 12, Tables 5 and 8) aggregate.

Two engines implement the same semantics:

* ``engine="fast"`` (the default) vectorizes **both phases**.

  On the decode side it keeps per-replica struct-of-arrays state (context
  lengths and remaining tokens as numpy arrays) and **coalesces decode steps
  into epochs**: while a replica's batch membership cannot change (no completion
  due, nothing newly admitted), the per-step latencies of the whole jump are
  priced in one vectorized call against the memoized
  :meth:`~repro.costmodel.latency.ReplicaCostModel.decode_step_grid` and a
  single wake event replaces thousands of per-token heap events.  A KV arrival
  mid-epoch truncates the epoch at the first step boundary after the arrival,
  exactly where the per-event engine would admit the request.

  On the prefill side it **coalesces queued batches into epochs**: when a
  replica picks up work, the whole queue is chunked into multi-request batches
  (greedy FIFO, up to ``max_prefill_batch_requests`` per batch), every batch is
  priced in one call against the memoized
  :meth:`~repro.costmodel.latency.ReplicaCostModel.prefill_latency_grid`, and
  the per-batch completion times plus every KV-transfer handoff are computed in
  a single numpy pass up front.  A new arrival on the replica truncates the
  epoch at the first batch that has not yet started (re-queueing its requests),
  exactly where the per-event engine would re-form batches.  The resulting KV
  transfers are emitted as **coalesced arrival batches** (one ``KV_BATCH``
  cursor per (prefill batch, decode replica) instead of one heap event per
  request) that feed the decode epochs in exact per-request arrival order.

* ``engine="reference"`` retains the original per-event implementation: one
  ``PREFILL_DONE`` heap event per prefill batch, one ``KV_ARRIVED`` event per
  request and one heap event per decode step.  It is the ground truth the
  equivalence suite (``tests/test_engine_equivalence.py``) and the
  ``bench_simulator_core`` / ``bench_prefill_core`` benchmarks compare against:
  both engines produce bitwise-identical per-request metrics.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.core.exceptions import SimulationError
from repro.core.rng import RNGLike, ensure_rng
from repro.core.types import Phase, Request, RequestMetrics
from repro.costmodel.kv_transfer import kv_transfer_seconds
from repro.costmodel.latency import (
    CostModelParams,
    DEFAULT_MAX_PREFILL_BATCH_REQUESTS,
    DEFAULT_PARAMS,
    ReplicaCostModel,
)
from repro.model.memory import kv_cache_bytes_per_token
from repro.hardware.cluster import Cluster
from repro.kvcache.paged import PagedKVCache
from repro.model.architecture import ModelConfig
from repro.scheduling.deployment import DeploymentPlan, RoutingPolicy
from repro.simulation.events import Event, EventKind, EventQueue
from repro.simulation.metrics import SimulationResult
from repro.workload.trace import Trace

#: valid decode-engine selectors of :class:`SimulatorConfig`
ENGINES = ("fast", "reference")


@dataclass(frozen=True)
class SimulatorConfig:
    """Knobs of the discrete-event simulator."""

    #: maximum number of requests batched into a single prefill execution
    max_prefill_batch_requests: int = DEFAULT_MAX_PREFILL_BATCH_REQUESTS
    #: KV block size (tokens) of the paged cache used for decode admission
    kv_block_size: int = 16
    #: hard cap on simulated time (seconds); ``None`` lets the system fully drain
    max_sim_time: Optional[float] = None
    #: RNG seed for routing draws
    seed: int = 0
    #: decode-path implementation: "fast" (vectorized, event-coalescing) or
    #: "reference" (one heap event per decode step); both produce identical
    #: per-request metrics
    engine: str = "fast"
    #: per-GPU straggler slowdowns as sorted ``(gpu_id, multiplier)`` pairs; a
    #: serving group containing a slowed GPU prices every latency through the
    #: largest multiplier among its GPUs (fault injection plumbs this through
    #: :meth:`~repro.serving.system.ThunderServe.apply_gpu_slowdowns`)
    gpu_slowdowns: Tuple[Tuple[int, float], ...] = ()

    def __post_init__(self) -> None:
        if self.max_prefill_batch_requests < 1:
            raise ValueError("max_prefill_batch_requests must be >= 1")
        if self.kv_block_size < 1:
            raise ValueError("kv_block_size must be >= 1")
        if self.engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {self.engine!r}")
        for gpu_id, slowdown in self.gpu_slowdowns:
            if slowdown <= 0:
                raise ValueError(f"slowdown for GPU {gpu_id} must be positive")

    def group_slowdown(self, gpu_ids) -> float:
        """Largest configured slowdown among ``gpu_ids`` (1.0 when none)."""
        if not self.gpu_slowdowns:
            return 1.0
        table = dict(self.gpu_slowdowns)
        return max((table.get(g, 1.0) for g in gpu_ids), default=1.0)


@dataclass
class _PrefillReplica:
    """Run-time state of one prefill replica.

    The reference engine only uses ``queue`` / ``busy`` (batches are re-formed
    at every ``PREFILL_DONE``); the fast engine additionally carries the state
    of the current coalesced prefill epoch: the planned batches, their
    precomputed start/completion times, the precomputed KV-transfer handoffs of
    every batch, and the truncation bookkeeping.
    """

    group_id: int
    cost: ReplicaCostModel
    queue: Deque[Request] = field(default_factory=deque)
    busy: bool = False
    # ---- fast engine coalesced-epoch state ----
    #: batches of the current epoch, in execution order
    epoch_batches: List[List[Request]] = field(default_factory=list)
    #: absolute start time of every planned batch
    epoch_starts: Optional[np.ndarray] = None
    #: absolute completion time of every planned batch
    epoch_dones: Optional[np.ndarray] = None
    #: per batch: coalesced KV handoffs as (decode group, requests sorted by
    #: arrival, arrival times) — precomputed in one numpy pass at plan time
    epoch_kv: List[List[Tuple[int, List[Request], np.ndarray]]] = field(default_factory=list)
    #: number of leading batches still valid (arrival truncation shortens this)
    epoch_cut: int = 0
    #: epoch generation counter; batch events carrying an older value are stale
    epoch_seq: int = 0


@dataclass
class _KVBatch:
    """Cursor over a coalesced array of KV arrivals for one decode replica.

    Replaces one ``KV_ARRIVED`` heap event per request with a single ``KV_BATCH``
    event whose handler drains arrivals in order, yielding back to the heap
    (via :meth:`EventQueue.repush` under its original sequence number, so
    exact-time ties keep their per-event ordering) whenever another event is
    due first.
    """

    decode_id: int
    requests: List[Request]
    times: np.ndarray
    #: index of the next undelivered arrival
    pos: int = 0
    #: heap sequence number assigned at the first push; reused on every repush
    heap_seq: int = -1


def _empty_ids() -> np.ndarray:
    return np.empty(0, dtype=np.int64)


@dataclass
class _DecodeReplica:
    """Run-time state of one decode replica.

    The reference engine tracks the running batch in ``active`` (request_id ->
    [context, remaining]); the fast engine keeps the same information as
    struct-of-arrays (``ids`` / ``ctx`` / ``rem``) plus the precomputed step
    boundary times of the current coalesced epoch.
    """

    group_id: int
    cost: ReplicaCostModel
    kv: PagedKVCache
    max_batch: int
    #: request_id -> [current context length, remaining tokens] (reference engine)
    active: Dict[int, List[int]] = field(default_factory=dict)
    pending: Deque[Request] = field(default_factory=deque)
    stepping: bool = False
    # ---- fast engine struct-of-arrays state ----
    ids: np.ndarray = field(default_factory=_empty_ids)
    ctx: np.ndarray = field(default_factory=_empty_ids)
    rem: np.ndarray = field(default_factory=_empty_ids)
    #: absolute times of the current epoch's step boundaries (b_1 .. b_K)
    epoch_times: Optional[np.ndarray] = None
    #: number of steps the scheduled wake will apply (truncation shortens this)
    epoch_cut: int = 0
    #: epoch generation counter; wake events carrying an older value are stale
    epoch_seq: int = 0


class ServingSimulator:
    """Simulates a phase-splitting deployment serving a request trace."""

    def __init__(
        self,
        cluster: Cluster,
        plan: DeploymentPlan,
        model: ModelConfig,
        params: CostModelParams = DEFAULT_PARAMS,
        config: SimulatorConfig = SimulatorConfig(),
    ) -> None:
        if not plan.prefill_groups or not plan.decode_groups:
            raise SimulationError("the deployment plan must contain prefill and decode replicas")
        self.cluster = cluster
        self.plan = plan
        self.model = model
        self.params = params
        self.config = config
        self._rng = ensure_rng(config.seed)

        self.prefills: Dict[int, _PrefillReplica] = {}
        for group in plan.prefill_groups:
            if group.plan is None:
                raise SimulationError(f"prefill group {group.group_id} has no parallel plan")
            self.prefills[group.group_id] = _PrefillReplica(
                group_id=group.group_id,
                cost=ReplicaCostModel(
                    cluster, group.plan, model, params,
                    slowdown=config.group_slowdown(group.gpu_ids),
                ),
            )
        self.decodes: Dict[int, _DecodeReplica] = {}
        for group in plan.decode_groups:
            if group.plan is None:
                raise SimulationError(f"decode group {group.group_id} has no parallel plan")
            cost = ReplicaCostModel(
                cluster, group.plan, model, params,
                slowdown=config.group_slowdown(group.gpu_ids),
            )
            capacity_tokens = cost.kv_token_capacity()
            kv = PagedKVCache(
                num_blocks=max(0, capacity_tokens // config.kv_block_size),
                block_size=config.kv_block_size,
            )
            self.decodes[group.group_id] = _DecodeReplica(
                group_id=group.group_id,
                cost=cost,
                kv=kv,
                max_batch=params.max_decode_batch,
            )

        self.routing = plan.routing or RoutingPolicy.uniform(
            [g.group_id for g in plan.prefill_groups],
            [g.group_id for g in plan.decode_groups],
        )
        # Normalized routing distributions and their cumulative tables are fixed
        # for the lifetime of the plan, so they are built once here instead of
        # renormalizing x / x.sum() on every arrival.
        x = self.routing.x
        y = self.routing.y
        self._x_norm = x / x.sum()
        self._x_cdf = np.cumsum(self._x_norm)
        row_sums = y.sum(axis=1, keepdims=True)
        # Same activity threshold as RoutingPolicy's validator: a replica with
        # meaningful traffic share but nowhere to dispatch must fail loudly, not
        # silently route to the clamped last decode group; LP noise below the
        # threshold is unreachable in practice and stays accepted.
        if np.any((x > 1e-12) & (row_sums[:, 0] <= 0)):
            raise SimulationError(
                "routing policy has an active prefill replica with an all-zero dispatch row"
            )
        self._y_norm = y / np.where(row_sums > 0, row_sums, 1.0)
        self._y_cdf = np.cumsum(self._y_norm, axis=1)

        self._events = EventQueue()
        self._metrics: Dict[int, RequestMetrics] = {}
        self._prefill_start: Dict[int, float] = {}
        self._decode_target: Dict[int, int] = {}
        self._clock = 0.0
        self._fast = config.engine == "fast"
        #: KV-transport bytes per prompt token at the plan's precision — the
        #: constant factor of every transfer the fast engine prices vectorized
        self._kv_bytes_per_token = kv_cache_bytes_per_token(
            model, bits=plan.kv_transport_bits
        )
        #: (prefill group, decode group) -> (alpha, beta) of the best link, or
        #: ``None`` for co-located pairs (zero-cost transfer); lazily filled
        self._kv_links: Dict[Tuple[int, int], Optional[Tuple[float, float]]] = {}

    # ------------------------------------------------------------------ dispatch
    def _choose_pair(self) -> Tuple[int, int]:
        """Sample a (prefill group, decode group) pair from the routing policy.

        Inverse-CDF sampling against the precomputed cumulative tables; one
        uniform draw per level instead of a full ``rng.choice`` with its per-call
        probability validation.
        """
        i = int(np.searchsorted(self._x_cdf, self._rng.random(), side="right"))
        i = min(i, self._x_cdf.size - 1)
        row = self._y_cdf[i]
        j = int(np.searchsorted(row, self._rng.random(), side="right"))
        j = min(j, row.size - 1)
        return self.routing.prefill_group_ids[i], self.routing.decode_group_ids[j]

    # ------------------------------------------------------------------ run
    def run(self, trace: Trace, label: str = "thunderserve") -> SimulationResult:
        """Replay a trace and return the per-request metrics.

        Every run starts from a clean slate — including the routing RNG — so a
        simulator instance can be reused across traces (e.g. the windowed serving
        of failure scenarios) with results identical to a freshly built one.
        """
        self._rng = ensure_rng(self.config.seed)
        self._events = EventQueue()
        self._metrics = {}
        self._prefill_start = {}
        self._decode_target = {}
        self._clock = 0.0
        for replica in self.prefills.values():
            replica.queue.clear()
            replica.busy = False
            replica.epoch_batches = []
            replica.epoch_starts = None
            replica.epoch_dones = None
            replica.epoch_kv = []
            replica.epoch_cut = 0
            replica.epoch_seq = 0
        for replica in self.decodes.values():
            replica.active.clear()
            replica.pending.clear()
            replica.kv.reset()
            replica.stepping = False
            replica.ids = _empty_ids()
            replica.ctx = _empty_ids()
            replica.rem = _empty_ids()
            replica.epoch_times = None
            replica.epoch_cut = 0
            replica.epoch_seq = 0

        for request in trace:
            self._events.push(Event(time=request.arrival_time, kind=EventKind.ARRIVAL, payload=request))

        fast = self.config.engine == "fast"
        horizon = self.config.max_sim_time
        truncated = False
        while self._events:
            event = self._events.pop()
            if horizon is not None and event.time > horizon:
                truncated = True
                break
            if event.kind is EventKind.DECODE_WAKE:
                replica = self.decodes[event.replica_id]
                if event.payload != replica.epoch_seq:
                    continue  # stale wake from a truncated epoch; no clock update
                self._clock = max(self._clock, event.time)
                self._apply_steps(replica, replica.epoch_cut)
                self._plan_epoch(replica, event.time)
                continue
            self._clock = max(self._clock, event.time)
            if event.kind is EventKind.ARRIVAL:
                self._on_arrival(event.payload, event.time)
            elif event.kind is EventKind.PREFILL_BATCH:
                self._on_prefill_batch(event.replica_id, event.payload, event.time)
            elif event.kind is EventKind.KV_BATCH:
                self._on_kv_batch(event.payload, horizon)
            elif event.kind is EventKind.PREFILL_DONE:
                self._on_prefill_done(event.replica_id, event.payload, event.time)
            elif event.kind is EventKind.KV_ARRIVED:
                if fast:
                    self._on_kv_arrived_fast(event.replica_id, event.payload, event.time)
                else:
                    self._on_kv_arrived(event.replica_id, event.payload, event.time)
            elif event.kind is EventKind.DECODE_STEP:
                self._on_decode_step(event.replica_id, event.time)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unexpected event kind {event.kind}")
        if fast and truncated and horizon is not None:
            self._flush_epochs(horizon)

        metrics = [self._metrics[rid] for rid in sorted(self._metrics)]
        return SimulationResult(
            metrics=metrics,
            makespan=self._clock,
            trace_duration=trace.duration,
            label=label,
        )

    # ------------------------------------------------------------------ handlers
    def _on_arrival(self, request: Request, now: float) -> None:
        prefill_id, decode_id = self._choose_pair()
        metrics = RequestMetrics(request=request, enqueue_time=now)
        metrics.prefill_replica = prefill_id
        metrics.decode_replica = decode_id
        self._metrics[request.request_id] = metrics
        self._decode_target[request.request_id] = decode_id
        replica = self.prefills[prefill_id]
        if self._fast:
            self._on_prefill_arrival_fast(replica, request, now)
            return
        replica.queue.append(request)
        if not replica.busy:
            self._start_prefill_batch(replica, now)

    def _start_prefill_batch(self, replica: _PrefillReplica, now: float) -> None:
        if not replica.queue:
            replica.busy = False
            return
        batch: List[Request] = []
        while replica.queue and len(batch) < self.config.max_prefill_batch_requests:
            batch.append(replica.queue.popleft())
        replica.busy = True
        max_input = max(r.input_length for r in batch)
        latency = replica.cost.prefill_latency(max_input, batch_size=len(batch))
        for request in batch:
            self._prefill_start[request.request_id] = now
        self._events.push(
            Event(
                time=now + latency,
                kind=EventKind.PREFILL_DONE,
                replica_id=replica.group_id,
                payload=batch,
            )
        )

    def _on_prefill_done(self, replica_id: int, batch: List[Request], now: float) -> None:
        replica = self.prefills[replica_id]
        prefill_group = self.plan.group(replica_id)
        for request in batch:
            metrics = self._metrics[request.request_id]
            metrics.prefill_start = self._prefill_start[request.request_id]
            metrics.first_token_time = now
            decode_id = self._decode_target[request.request_id]
            if request.output_length <= 1:
                # Single-token responses finish at prefill; no KV transfer needed.
                metrics.kv_transfer_done = now
                metrics.completion_time = now
                metrics.finished = True
                continue
            decode_group = self.plan.group(decode_id)
            transfer = kv_transfer_seconds(
                self.cluster.network,
                prefill_group.gpu_ids,
                decode_group.gpu_ids,
                self.model,
                num_tokens=request.input_length + 1,
                batch_size=1,
                bits=self.plan.kv_transport_bits,
            )
            self._events.push(
                Event(
                    time=now + transfer,
                    kind=EventKind.KV_ARRIVED,
                    replica_id=decode_id,
                    payload=request,
                )
            )
        # Keep the prefill replica busy with the next batch, if any.
        self._start_prefill_batch(replica, now)

    # ----------------------------------------------------- prefill (fast engine)
    def _on_prefill_arrival_fast(self, replica: _PrefillReplica, request: Request, now: float) -> None:
        """Queue an arrival, truncating the replica's in-flight prefill epoch.

        The per-event engine re-forms batches from the live queue at every batch
        boundary, but FIFO order makes almost every planned batch immune to a
        later arrival: the arrival joins the *back* of the queue, so a planned
        batch that is already full keeps exactly its composition.  Only the
        trailing **underfull** batch (greedy chunking leaves at most one) could
        absorb the newcomer when it is eventually formed — so if that batch has
        not started yet, it alone is cancelled and re-queued ahead of the
        arrival; the replan at the last surviving batch boundary re-forms it
        exactly like the per-event engine would.  Batches already running
        complete as planned.
        """
        replica.queue.append(request)
        if not replica.busy:
            self._plan_prefill_epoch(replica, now)
            return
        assert replica.epoch_starts is not None
        last = replica.epoch_cut - 1
        if len(replica.epoch_batches[last]) >= self.config.max_prefill_batch_requests:
            return  # every pending batch is full; composition cannot change
        # The trailing batch is underfull: cancel it unless it already started.
        # Arrivals pop before equal-time batch boundaries (their heap entries
        # are pushed first, at run setup), so a batch starting exactly at
        # ``now`` is formed *after* this request joined the queue in the
        # per-event engine — start >= now means "not started".  The leading
        # batch always survives: the epoch was planned strictly before ``now``
        # (an arrival at the plan instant would have been processed first).
        if last >= 1 and float(replica.epoch_starts[last]) >= now:
            replica.queue.extendleft(reversed(replica.epoch_batches[last]))
            replica.epoch_cut = last

    def _plan_prefill_epoch(self, replica: _PrefillReplica, now: float) -> None:
        """Start a coalesced prefill epoch at ``now``.

        Drains the replica's queue into greedy FIFO batches (up to
        ``max_prefill_batch_requests`` requests each), prices every batch with
        one call into the memoized vectorized
        :meth:`~repro.costmodel.latency.ReplicaCostModel.prefill_latency_grid`,
        and precomputes every batch's start/completion time plus all KV-transfer
        handoffs in a single numpy pass.  One cheap ``PREFILL_BATCH`` event per
        batch replays the precomputed timeline; an arrival mid-epoch truncates
        the not-yet-started tail (see :meth:`_on_prefill_arrival_fast`).
        """
        if not replica.queue:
            replica.busy = False
            replica.epoch_batches = []
            replica.epoch_cut = 0
            return
        replica.busy = True
        cap = self.config.max_prefill_batch_requests
        queued = list(replica.queue)
        replica.queue.clear()
        batches = [queued[i : i + cap] for i in range(0, len(queued), cap)]
        n = len(batches)
        max_inputs = np.fromiter(
            (max(r.input_length for r in batch) for batch in batches),
            dtype=np.int64,
            count=n,
        )
        sizes = np.fromiter((len(batch) for batch in batches), dtype=np.int64, count=n)
        latencies = replica.cost.prefill_latency_grid(max_inputs, sizes)
        # Sequential accumulation, bitwise-identical to the reference engine's
        # per-batch now + latency chain (np.cumsum accumulates left to right).
        buffer = np.empty(n + 1, dtype=np.float64)
        buffer[0] = now
        buffer[1:] = latencies
        times = np.cumsum(buffer)
        replica.epoch_batches = batches
        replica.epoch_starts = times[:-1]
        replica.epoch_dones = times[1:]
        replica.epoch_cut = n
        replica.epoch_seq += 1
        replica.epoch_kv = self._plan_epoch_kv(replica, batches, replica.epoch_dones)
        for k, done in enumerate(replica.epoch_dones.tolist()):
            self._events.push(
                Event(
                    time=done,
                    kind=EventKind.PREFILL_BATCH,
                    replica_id=replica.group_id,
                    payload=(replica.epoch_seq, k),
                )
            )

    def _kv_link(self, prefill_id: int, decode_id: int) -> Optional[Tuple[float, float]]:
        """(alpha, beta) of the best link between two groups; ``None`` if co-located."""
        key = (prefill_id, decode_id)
        if key in self._kv_links:
            return self._kv_links[key]
        src = self.plan.group(prefill_id).gpu_ids
        dst = self.plan.group(decode_id).gpu_ids
        if set(src) & set(dst):
            link = None
        else:
            network = self.cluster.network
            i, j, _bw = network.best_link_between(list(src), list(dst))
            link = (network.latency_s(i, j), network.bandwidth_bytes(i, j))
        self._kv_links[key] = link
        return link

    def _plan_epoch_kv(
        self,
        replica: _PrefillReplica,
        batches: List[List[Request]],
        dones: np.ndarray,
    ) -> List[List[Tuple[int, List[Request], np.ndarray]]]:
        """Precompute every batch's KV-transfer handoffs, coalesced per target.

        For each (batch, decode replica) pair the per-request arrival times are
        ``batch_done + alpha + bytes/beta`` computed in one vectorized shot
        against the cached link parameters — bitwise-identical to the reference
        engine's per-request :func:`kv_transfer_seconds` calls.  Requests are
        stably sorted by arrival time so a single :class:`_KVBatch` cursor can
        drain them in exact heap order.
        """
        plan: List[List[Tuple[int, List[Request], np.ndarray]]] = []
        for k, batch in enumerate(batches):
            groups: Dict[int, List[Request]] = {}
            for request in batch:
                if request.output_length <= 1:
                    continue  # finishes at prefill; no KV transfer
                groups.setdefault(self._decode_target[request.request_id], []).append(request)
            done = float(dones[k])
            per_batch: List[Tuple[int, List[Request], np.ndarray]] = []
            for decode_id, requests in groups.items():
                link = self._kv_link(replica.group_id, decode_id)
                if link is None:
                    times = np.full(len(requests), done, dtype=np.float64)
                else:
                    alpha, beta = link
                    tokens = np.fromiter(
                        (r.input_length + 1 for r in requests),
                        dtype=np.int64,
                        count=len(requests),
                    )
                    times = done + (alpha + (self._kv_bytes_per_token * tokens) / beta)
                order = np.argsort(times, kind="stable")
                per_batch.append(
                    (decode_id, [requests[i] for i in order.tolist()], times[order])
                )
            plan.append(per_batch)
        return plan

    def _on_prefill_batch(self, replica_id: int, payload: Tuple[int, int], now: float) -> None:
        """Apply one precomputed prefill-batch completion (fast engine)."""
        replica = self.prefills[replica_id]
        seq, idx = payload
        if seq != replica.epoch_seq or idx >= replica.epoch_cut:
            return  # batch cancelled by an arrival truncation / superseded epoch
        assert replica.epoch_starts is not None
        batch = replica.epoch_batches[idx]
        start = float(replica.epoch_starts[idx])
        for request in batch:
            metrics = self._metrics[request.request_id]
            metrics.prefill_start = start
            metrics.first_token_time = now
            if request.output_length <= 1:
                # Single-token responses finish at prefill; no KV transfer needed.
                metrics.kv_transfer_done = now
                metrics.completion_time = now
                metrics.finished = True
        for decode_id, requests, times in replica.epoch_kv[idx]:
            holder = _KVBatch(decode_id=decode_id, requests=requests, times=times)
            holder.heap_seq = self._events.push(
                Event(
                    time=float(times[0]),
                    kind=EventKind.KV_BATCH,
                    replica_id=decode_id,
                    payload=holder,
                )
            )
        if idx == replica.epoch_cut - 1:
            # Last valid batch: pick up whatever queued (or was re-queued by a
            # truncation) while the epoch ran.
            self._plan_prefill_epoch(replica, now)

    def _on_kv_batch(self, holder: _KVBatch, horizon: Optional[float]) -> None:
        """Drain a coalesced KV-arrival cursor in exact per-event order.

        Arrivals are delivered while they remain the earliest pending work;
        whenever another heap entry is due first — compared on the full
        (time, sequence) key, so exact-time ties resolve as they would for
        per-request events — the cursor is re-inserted at the next arrival
        under its original sequence number.
        """
        times = holder.times
        requests = holder.requests
        n = len(requests)
        events = self._events
        while holder.pos < n:
            t = float(times[holder.pos])
            if horizon is not None and t > horizon:
                # Beyond the horizon: hand the remainder back so the main loop
                # observes (and truncates at) it like the per-event engine.
                events.repush(
                    Event(
                        time=t,
                        kind=EventKind.KV_BATCH,
                        replica_id=holder.decode_id,
                        payload=holder,
                    ),
                    holder.heap_seq,
                )
                return
            top = events.peek_key()
            if top is not None and top < (t, holder.heap_seq):
                events.repush(
                    Event(
                        time=t,
                        kind=EventKind.KV_BATCH,
                        replica_id=holder.decode_id,
                        payload=holder,
                    ),
                    holder.heap_seq,
                )
                return
            holder.pos += 1
            self._clock = max(self._clock, t)
            self._on_kv_arrived_fast(holder.decode_id, requests[holder.pos - 1], t)

    # ------------------------------------------------------ decode (fast engine)
    def _admit_pending_fast(self, replica: _DecodeReplica) -> None:
        """Admit pending requests into the array state while capacity allows."""
        new_ids: List[int] = []
        new_ctx: List[int] = []
        new_rem: List[int] = []
        while replica.pending and replica.ids.size + len(new_ids) < replica.max_batch:
            request = replica.pending[0]
            final_context = request.total_tokens
            if not replica.kv.can_allocate(final_context):
                break
            replica.pending.popleft()
            replica.kv.allocate(request.request_id, final_context)
            # The prefill already produced the first output token.
            new_ids.append(request.request_id)
            new_ctx.append(request.input_length + 1)
            new_rem.append(request.output_length - 1)
        if new_ids:
            replica.ids = np.concatenate([replica.ids, np.asarray(new_ids, dtype=np.int64)])
            replica.ctx = np.concatenate([replica.ctx, np.asarray(new_ctx, dtype=np.int64)])
            replica.rem = np.concatenate([replica.rem, np.asarray(new_rem, dtype=np.int64)])

    def _plan_epoch(self, replica: _DecodeReplica, now: float) -> None:
        """Start a coalesced decode epoch at ``now``.

        Precomputes the boundary time of every step until the batch membership
        can next change: the first completion when requests are waiting (a
        completion frees KV/batch capacity, so admission must be retried there),
        or the full drain of the current batch when nothing is pending.  One
        DECODE_WAKE event stands in for the whole jump; a KV arrival mid-epoch
        truncates it at the first boundary after the arrival.
        """
        self._admit_pending_fast(replica)
        n = int(replica.ids.size)
        if n == 0:
            replica.stepping = False
            replica.epoch_times = None
            replica.epoch_cut = 0
            return
        replica.stepping = True
        rem = replica.rem
        horizon_steps = int(rem.min()) if replica.pending else int(rem.max())
        order = np.argsort(rem, kind="stable")
        rem_sorted = rem[order]
        ctx_sorted = replica.ctx[order]
        t = np.arange(1, horizon_steps + 1, dtype=np.int64)
        # Requests with rem <= t-1 have completed before step t begins.
        dropped = np.searchsorted(rem_sorted, t - 1, side="right")
        batch_t = n - dropped
        suffix = np.zeros(n + 1, dtype=np.int64)
        suffix[:n] = np.cumsum(ctx_sorted[::-1])[::-1]
        # Sum of survivor contexts at the start of step t (each grew by t-1).
        context_sum = suffix[dropped] + batch_t * (t - 1)
        # int(np.mean(...)) of the reference engine: float64 division, truncation.
        mean_ctx = (context_sum.astype(np.float64) / batch_t.astype(np.float64)).astype(np.int64)
        np.maximum(mean_ctx, 1, out=mean_ctx)
        latencies = replica.cost.decode_step_grid(batch_t, mean_ctx)
        # Sequential accumulation, bitwise-identical to the reference engine's
        # now += latency chain (np.cumsum accumulates left to right).
        buffer = np.empty(horizon_steps + 1, dtype=np.float64)
        buffer[0] = now
        buffer[1:] = latencies
        replica.epoch_times = np.cumsum(buffer)[1:]
        replica.epoch_cut = horizon_steps
        replica.epoch_seq += 1
        self._events.push(
            Event(
                time=float(replica.epoch_times[-1]),
                kind=EventKind.DECODE_WAKE,
                replica_id=replica.group_id,
                payload=replica.epoch_seq,
            )
        )

    def _apply_steps(self, replica: _DecodeReplica, steps: int) -> None:
        """Advance the replica's batch by ``steps`` tokens, completing expiries.

        Requests whose remaining-token count expires inside the jump complete at
        their exact per-step boundary time ``epoch_times[rem - 1]``.
        """
        if steps <= 0:
            return
        times = replica.epoch_times
        rem = replica.rem
        finished = rem <= steps
        if finished.any():
            assert times is not None
            finished_ids = replica.ids[finished].tolist()
            finished_times = times[rem[finished] - 1].tolist()
            for request_id, done in zip(finished_ids, finished_times):
                replica.kv.free(request_id)
                metrics = self._metrics[request_id]
                metrics.completion_time = done
                metrics.finished = True
            keep = ~finished
            replica.ids = replica.ids[keep]
            replica.ctx = replica.ctx[keep] + steps
            replica.rem = replica.rem[keep] - steps
        else:
            replica.ctx = replica.ctx + steps
            replica.rem = replica.rem - steps

    def _on_kv_arrived_fast(self, replica_id: int, request: Request, now: float) -> None:
        metrics = self._metrics[request.request_id]
        metrics.kv_transfer_done = now
        replica = self.decodes[replica_id]
        head_was_blocked = bool(replica.pending)
        replica.pending.append(request)
        if not replica.stepping:
            self._plan_epoch(replica, now)
            return
        if head_was_blocked:
            # A FIFO head already waiting means admission is blocked on capacity
            # that only a completion can free — the epoch end already covers it.
            return
        assert replica.epoch_times is not None
        times = replica.epoch_times[: replica.epoch_cut]
        # First step boundary at or after the arrival: that is where the
        # reference engine's per-step admission would pick the request up.
        idx = int(np.searchsorted(times, now, side="left"))
        steps = idx + 1
        if steps < replica.epoch_cut:
            replica.epoch_cut = steps
            replica.epoch_seq += 1
            self._events.push(
                Event(
                    time=float(times[idx]),
                    kind=EventKind.DECODE_WAKE,
                    replica_id=replica.group_id,
                    payload=replica.epoch_seq,
                )
            )

    def _flush_epochs(self, horizon: float) -> None:
        """Complete in-flight epoch steps up to ``horizon`` after a truncated run.

        The reference engine processes every per-step event with time <= horizon
        before stopping; coalesced epochs must replay the same boundaries so
        horizon-bounded runs record identical completions.
        """
        for replica in self.decodes.values():
            if not replica.stepping or replica.epoch_times is None:
                continue
            times = replica.epoch_times[: replica.epoch_cut]
            steps = int(np.searchsorted(times, horizon, side="right"))
            if steps > 0:
                self._apply_steps(replica, steps)
                self._clock = max(self._clock, float(times[steps - 1]))

    # ------------------------------------------------- decode (reference engine)
    def _on_kv_arrived(self, replica_id: int, request: Request, now: float) -> None:
        metrics = self._metrics[request.request_id]
        metrics.kv_transfer_done = now
        replica = self.decodes[replica_id]
        replica.pending.append(request)
        if not replica.stepping:
            self._schedule_decode_step(replica, now)

    def _admit_pending(self, replica: _DecodeReplica) -> None:
        """Admit pending requests while KV memory and the batch cap allow."""
        while replica.pending and len(replica.active) < replica.max_batch:
            request = replica.pending[0]
            final_context = request.total_tokens
            if not replica.kv.can_allocate(final_context):
                break
            replica.pending.popleft()
            replica.kv.allocate(request.request_id, final_context)
            # The prefill already produced the first output token.
            replica.active[request.request_id] = [request.input_length + 1, request.output_length - 1]

    def _schedule_decode_step(self, replica: _DecodeReplica, now: float) -> None:
        self._admit_pending(replica)
        if not replica.active:
            replica.stepping = False
            return
        replica.stepping = True
        batch = len(replica.active)
        mean_context = int(np.mean([state[0] for state in replica.active.values()]))
        latency = replica.cost.decode_step_latency(batch, max(1, mean_context))
        self._events.push(
            Event(time=now + latency, kind=EventKind.DECODE_STEP, replica_id=replica.group_id)
        )

    def _on_decode_step(self, replica_id: int, now: float) -> None:
        replica = self.decodes[replica_id]
        finished_ids: List[int] = []
        for request_id, state in replica.active.items():
            state[0] += 1
            state[1] -= 1
            if state[1] <= 0:
                finished_ids.append(request_id)
        for request_id in finished_ids:
            del replica.active[request_id]
            replica.kv.free(request_id)
            metrics = self._metrics[request_id]
            metrics.completion_time = now
            metrics.finished = True
        self._schedule_decode_step(replica, now)


__all__ = ["ServingSimulator", "SimulatorConfig", "ENGINES"]

"""Discrete-event simulator for phase-splitting deployments.

The simulator replays a request trace against a :class:`DeploymentPlan`:

1. arrivals are dispatched to a prefill replica and a decode replica according to
   the plan's routing policy (the ``X`` / ``Y`` of §3.3);
2. each prefill replica serves its queue in FIFO order, one batch at a time, with
   service times from the roofline cost model;
3. the resulting KV cache is transferred to the decode replica over the cluster
   network (alpha-beta model, optionally 4-bit compressed);
4. each decode replica runs continuous batching: at every step boundary it admits
   pending requests while KV-cache memory allows, then advances every active
   sequence by one token.

The per-request :class:`RequestMetrics` collected here are what the end-to-end
experiments (Figures 7–9, 11, 12, Tables 5 and 8) aggregate.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.core.exceptions import SimulationError
from repro.core.rng import RNGLike, ensure_rng
from repro.core.types import Phase, Request, RequestMetrics
from repro.costmodel.kv_transfer import kv_transfer_seconds
from repro.costmodel.latency import CostModelParams, DEFAULT_PARAMS, ReplicaCostModel
from repro.hardware.cluster import Cluster
from repro.kvcache.paged import PagedKVCache
from repro.model.architecture import ModelConfig
from repro.scheduling.deployment import DeploymentPlan, RoutingPolicy
from repro.simulation.events import Event, EventKind, EventQueue
from repro.simulation.metrics import SimulationResult
from repro.workload.trace import Trace


@dataclass(frozen=True)
class SimulatorConfig:
    """Knobs of the discrete-event simulator."""

    #: maximum number of requests batched into a single prefill execution
    max_prefill_batch_requests: int = 1
    #: KV block size (tokens) of the paged cache used for decode admission
    kv_block_size: int = 16
    #: hard cap on simulated time (seconds); ``None`` lets the system fully drain
    max_sim_time: Optional[float] = None
    #: RNG seed for routing draws
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_prefill_batch_requests < 1:
            raise ValueError("max_prefill_batch_requests must be >= 1")
        if self.kv_block_size < 1:
            raise ValueError("kv_block_size must be >= 1")


@dataclass
class _PrefillReplica:
    """Run-time state of one prefill replica."""

    group_id: int
    cost: ReplicaCostModel
    queue: Deque[Request] = field(default_factory=deque)
    busy: bool = False


@dataclass
class _DecodeReplica:
    """Run-time state of one decode replica."""

    group_id: int
    cost: ReplicaCostModel
    kv: PagedKVCache
    max_batch: int
    #: request_id -> [current context length, remaining tokens to generate]
    active: Dict[int, List[int]] = field(default_factory=dict)
    pending: Deque[Request] = field(default_factory=deque)
    stepping: bool = False


class ServingSimulator:
    """Simulates a phase-splitting deployment serving a request trace."""

    def __init__(
        self,
        cluster: Cluster,
        plan: DeploymentPlan,
        model: ModelConfig,
        params: CostModelParams = DEFAULT_PARAMS,
        config: SimulatorConfig = SimulatorConfig(),
    ) -> None:
        if not plan.prefill_groups or not plan.decode_groups:
            raise SimulationError("the deployment plan must contain prefill and decode replicas")
        self.cluster = cluster
        self.plan = plan
        self.model = model
        self.params = params
        self.config = config
        self._rng = ensure_rng(config.seed)

        self.prefills: Dict[int, _PrefillReplica] = {}
        for group in plan.prefill_groups:
            if group.plan is None:
                raise SimulationError(f"prefill group {group.group_id} has no parallel plan")
            self.prefills[group.group_id] = _PrefillReplica(
                group_id=group.group_id,
                cost=ReplicaCostModel(cluster, group.plan, model, params),
            )
        self.decodes: Dict[int, _DecodeReplica] = {}
        for group in plan.decode_groups:
            if group.plan is None:
                raise SimulationError(f"decode group {group.group_id} has no parallel plan")
            cost = ReplicaCostModel(cluster, group.plan, model, params)
            capacity_tokens = cost.kv_token_capacity()
            kv = PagedKVCache(
                num_blocks=max(0, capacity_tokens // config.kv_block_size),
                block_size=config.kv_block_size,
            )
            self.decodes[group.group_id] = _DecodeReplica(
                group_id=group.group_id,
                cost=cost,
                kv=kv,
                max_batch=params.max_decode_batch,
            )

        self.routing = plan.routing or RoutingPolicy.uniform(
            [g.group_id for g in plan.prefill_groups],
            [g.group_id for g in plan.decode_groups],
        )
        self._events = EventQueue()
        self._metrics: Dict[int, RequestMetrics] = {}
        self._prefill_start: Dict[int, float] = {}
        self._decode_target: Dict[int, int] = {}
        self._clock = 0.0

    # ------------------------------------------------------------------ dispatch
    def _choose_pair(self) -> Tuple[int, int]:
        """Sample a (prefill group, decode group) pair from the routing policy."""
        x = self.routing.x
        i = int(self._rng.choice(len(x), p=x / x.sum()))
        y_row = self.routing.y[i]
        j = int(self._rng.choice(len(y_row), p=y_row / y_row.sum()))
        return self.routing.prefill_group_ids[i], self.routing.decode_group_ids[j]

    # ------------------------------------------------------------------ run
    def run(self, trace: Trace, label: str = "thunderserve") -> SimulationResult:
        """Replay a trace and return the per-request metrics."""
        self._events = EventQueue()
        self._metrics = {}
        self._prefill_start = {}
        self._decode_target = {}
        self._clock = 0.0
        for replica in self.prefills.values():
            replica.queue.clear()
            replica.busy = False
        for replica in self.decodes.values():
            replica.active.clear()
            replica.pending.clear()
            replica.kv.reset()
            replica.stepping = False

        for request in trace:
            self._events.push(Event(time=request.arrival_time, kind=EventKind.ARRIVAL, payload=request))

        horizon = self.config.max_sim_time
        while self._events:
            event = self._events.pop()
            if horizon is not None and event.time > horizon:
                break
            self._clock = max(self._clock, event.time)
            if event.kind is EventKind.ARRIVAL:
                self._on_arrival(event.payload, event.time)
            elif event.kind is EventKind.PREFILL_DONE:
                self._on_prefill_done(event.replica_id, event.payload, event.time)
            elif event.kind is EventKind.KV_ARRIVED:
                self._on_kv_arrived(event.replica_id, event.payload, event.time)
            elif event.kind is EventKind.DECODE_STEP:
                self._on_decode_step(event.replica_id, event.time)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unexpected event kind {event.kind}")

        metrics = [self._metrics[rid] for rid in sorted(self._metrics)]
        return SimulationResult(
            metrics=metrics,
            makespan=self._clock,
            trace_duration=trace.duration,
            label=label,
        )

    # ------------------------------------------------------------------ handlers
    def _on_arrival(self, request: Request, now: float) -> None:
        prefill_id, decode_id = self._choose_pair()
        metrics = RequestMetrics(request=request, enqueue_time=now)
        metrics.prefill_replica = prefill_id
        metrics.decode_replica = decode_id
        self._metrics[request.request_id] = metrics
        self._decode_target[request.request_id] = decode_id
        replica = self.prefills[prefill_id]
        replica.queue.append(request)
        if not replica.busy:
            self._start_prefill_batch(replica, now)

    def _start_prefill_batch(self, replica: _PrefillReplica, now: float) -> None:
        if not replica.queue:
            replica.busy = False
            return
        batch: List[Request] = []
        while replica.queue and len(batch) < self.config.max_prefill_batch_requests:
            batch.append(replica.queue.popleft())
        replica.busy = True
        max_input = max(r.input_length for r in batch)
        latency = replica.cost.prefill_latency(max_input, batch_size=len(batch))
        for request in batch:
            self._prefill_start[request.request_id] = now
        self._events.push(
            Event(
                time=now + latency,
                kind=EventKind.PREFILL_DONE,
                replica_id=replica.group_id,
                payload=batch,
            )
        )

    def _on_prefill_done(self, replica_id: int, batch: List[Request], now: float) -> None:
        replica = self.prefills[replica_id]
        prefill_group = self.plan.group(replica_id)
        for request in batch:
            metrics = self._metrics[request.request_id]
            metrics.prefill_start = self._prefill_start[request.request_id]
            metrics.first_token_time = now
            decode_id = self._decode_target[request.request_id]
            if request.output_length <= 1:
                # Single-token responses finish at prefill; no KV transfer needed.
                metrics.kv_transfer_done = now
                metrics.completion_time = now
                metrics.finished = True
                continue
            decode_group = self.plan.group(decode_id)
            transfer = kv_transfer_seconds(
                self.cluster.network,
                prefill_group.gpu_ids,
                decode_group.gpu_ids,
                self.model,
                num_tokens=request.input_length + 1,
                batch_size=1,
                bits=self.plan.kv_transport_bits,
            )
            self._events.push(
                Event(
                    time=now + transfer,
                    kind=EventKind.KV_ARRIVED,
                    replica_id=decode_id,
                    payload=request,
                )
            )
        # Keep the prefill replica busy with the next batch, if any.
        self._start_prefill_batch(replica, now)

    def _on_kv_arrived(self, replica_id: int, request: Request, now: float) -> None:
        metrics = self._metrics[request.request_id]
        metrics.kv_transfer_done = now
        replica = self.decodes[replica_id]
        replica.pending.append(request)
        if not replica.stepping:
            self._schedule_decode_step(replica, now)

    def _admit_pending(self, replica: _DecodeReplica) -> None:
        """Admit pending requests while KV memory and the batch cap allow."""
        while replica.pending and len(replica.active) < replica.max_batch:
            request = replica.pending[0]
            final_context = request.total_tokens
            if not replica.kv.can_allocate(final_context):
                break
            replica.pending.popleft()
            replica.kv.allocate(request.request_id, final_context)
            # The prefill already produced the first output token.
            replica.active[request.request_id] = [request.input_length + 1, request.output_length - 1]

    def _schedule_decode_step(self, replica: _DecodeReplica, now: float) -> None:
        self._admit_pending(replica)
        if not replica.active:
            replica.stepping = False
            return
        replica.stepping = True
        batch = len(replica.active)
        mean_context = int(np.mean([state[0] for state in replica.active.values()]))
        latency = replica.cost.decode_step_latency(batch, max(1, mean_context))
        self._events.push(
            Event(time=now + latency, kind=EventKind.DECODE_STEP, replica_id=replica.group_id)
        )

    def _on_decode_step(self, replica_id: int, now: float) -> None:
        replica = self.decodes[replica_id]
        finished_ids: List[int] = []
        for request_id, state in replica.active.items():
            state[0] += 1
            state[1] -= 1
            if state[1] <= 0:
                finished_ids.append(request_id)
        for request_id in finished_ids:
            del replica.active[request_id]
            replica.kv.free(request_id)
            metrics = self._metrics[request_id]
            metrics.completion_time = now
            metrics.finished = True
        self._schedule_decode_step(replica, now)


__all__ = ["ServingSimulator", "SimulatorConfig"]

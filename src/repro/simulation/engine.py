"""Discrete-event simulator for phase-splitting deployments.

The simulator replays a request trace against a :class:`DeploymentPlan`:

1. arrivals are dispatched to a prefill replica and a decode replica according to
   the plan's routing policy (the ``X`` / ``Y`` of §3.3);
2. each prefill replica serves its queue in FIFO order, one batch at a time, with
   service times from the roofline cost model;
3. the resulting KV cache is transferred to the decode replica over the cluster
   network (alpha-beta model, optionally 4-bit compressed);
4. each decode replica runs continuous batching: at every step boundary it admits
   pending requests while KV-cache memory allows, then advances every active
   sequence by one token.

The per-request metrics collected here are what the end-to-end experiments
(Figures 7–9, 11, 12, Tables 5 and 8) aggregate.

Two engines implement the same semantics:

* ``engine="fast"`` (the default) keeps the whole request lifecycle in
  **struct-of-arrays form**: requests are integer rows into preallocated numpy
  columns (ids, arrival times, lengths, routing targets, and the metric
  timestamps), so no per-request Python object is created on the fast path.
  Traces are ingested chunk by chunk — :meth:`ServingSimulator.run_stream`
  accepts any iterator of :class:`~repro.workload.trace.RequestArrays` blocks,
  bounding memory by the chunk size — and arrivals are driven by a cursor over
  the ingested columns instead of one heap event per request.

  On the decode side it keeps per-replica struct-of-arrays state (rows sorted
  by remaining tokens) and **coalesces decode steps into epochs**: the batch
  composition is constant until the earliest completion, so the per-step
  latencies up to ``min(first completion, budget)`` are priced in one
  vectorized call against the memoized
  :meth:`~repro.costmodel.latency.ReplicaCostModel.decode_step_grid` (a scalar
  memo path serves very short epochs) and a single wake event replaces
  thousands of per-token heap events.  A KV arrival mid-epoch truncates the
  epoch at the first step boundary after the arrival, exactly where the
  per-event engine would admit the request — and when nothing was admitted at
  a truncated boundary, the **surviving suffix of the old plan is reused**
  verbatim instead of re-pricing it (the remaining step times are a pure
  function of unchanged batch state).  The per-epoch step budget adapts to the
  interruption rate, doubling on quiet replicas and shrinking on busy ones.

  On the prefill side it **coalesces queued batches into epochs**: when a
  replica picks up work, the whole queue is chunked into multi-request batches
  (greedy FIFO, up to ``max_prefill_batch_requests`` per batch), every batch is
  priced in one call against the memoized
  :meth:`~repro.costmodel.latency.ReplicaCostModel.prefill_latency_grid`, and
  the per-batch completion times plus every KV-transfer handoff are computed in
  a single numpy pass up front.  A new arrival on the replica truncates the
  epoch at the first batch that has not yet started (re-queueing its rows),
  exactly where the per-event engine would re-form batches.  The resulting KV
  transfers are emitted as **coalesced arrival batches** (one ``KV_BATCH``
  cursor per (prefill batch, decode replica) instead of one heap event per
  request) that feed the decode epochs in exact per-request arrival order.

* ``engine="reference"`` retains the original per-event implementation: one
  ``ARRIVAL`` heap event per request, one ``PREFILL_DONE`` event per prefill
  batch, one ``KV_ARRIVED`` event per request and one heap event per decode
  step, with per-request :class:`~repro.core.types.RequestMetrics` objects.
  It is the ground truth the equivalence suite
  (``tests/test_engine_equivalence.py``) and the ``bench_simulator_core`` /
  ``bench_prefill_core`` / ``bench_megatrace`` benchmarks compare against:
  both engines produce bitwise-identical per-request metrics.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.exceptions import SimulationError
from repro.core.rng import ensure_rng
from repro.core.types import Request, RequestMetrics, RequestOutcome
from repro.faults.retry import RetryPolicy, fault_uniform
from repro.faults.timeline import FaultTimeline, ReplicaFaultEvent
from repro.costmodel.kv_transfer import kv_transfer_seconds
from repro.costmodel.latency import (
    CostModelParams,
    DEFAULT_MAX_PREFILL_BATCH_REQUESTS,
    DEFAULT_PARAMS,
    ReplicaCostModel,
)
from repro.model.memory import kv_cache_bytes_per_token
from repro.hardware.cluster import Cluster
from repro.kvcache.paged import PagedKVCache
from repro.model.architecture import ModelConfig
from repro.scheduling.deployment import DeploymentPlan, RoutingPolicy
from repro.simulation.events import Event, EventKind, EventQueue
from repro.simulation.metrics import MetricArrays, SimulationResult
from repro.workload.trace import RequestArrays, Trace

#: valid decode-engine selectors of :class:`SimulatorConfig`
ENGINES = ("fast", "reference")

#: decode epoch budget floor: epochs shrink to this many steps under pressure
_MIN_EPOCH_BUDGET = 16
#: decode epoch budget ceiling: quiet replicas coalesce up to this many steps
_MAX_EPOCH_BUDGET = 4096
#: epochs at most this long are priced through the scalar memo, skipping the
#: fixed cost of the vectorized grid path
_SMALL_EPOCH_STEPS = 16

# RequestOutcome values as plain ints for the fast engine's outcome column.
_OUT_FINISHED = int(RequestOutcome.FINISHED)
_OUT_RETRIED = int(RequestOutcome.RETRIED_THEN_FINISHED)
_OUT_TIMED_OUT = int(RequestOutcome.TIMED_OUT)
_OUT_DROPPED = int(RequestOutcome.DROPPED_OUTAGE)


@dataclass(frozen=True)
class SimulatorConfig:
    """Knobs of the discrete-event simulator."""

    #: maximum number of requests batched into a single prefill execution
    max_prefill_batch_requests: int = DEFAULT_MAX_PREFILL_BATCH_REQUESTS
    #: KV block size (tokens) of the paged cache used for decode admission
    kv_block_size: int = 16
    #: hard cap on simulated time (seconds); ``None`` lets the system fully drain
    max_sim_time: Optional[float] = None
    #: RNG seed for routing draws
    seed: int = 0
    #: decode-path implementation: "fast" (vectorized, event-coalescing) or
    #: "reference" (one heap event per decode step); both produce identical
    #: per-request metrics
    engine: str = "fast"
    #: per-GPU straggler slowdowns as sorted ``(gpu_id, multiplier)`` pairs; a
    #: serving group containing a slowed GPU prices every latency through the
    #: largest multiplier among its GPUs (fault injection plumbs this through
    #: :meth:`~repro.serving.system.ThunderServe.apply_gpu_slowdowns`)
    gpu_slowdowns: Tuple[Tuple[int, float], ...] = ()

    def __post_init__(self) -> None:
        if self.max_prefill_batch_requests < 1:
            raise ValueError("max_prefill_batch_requests must be >= 1")
        if self.kv_block_size < 1:
            raise ValueError("kv_block_size must be >= 1")
        if self.engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {self.engine!r}")
        for gpu_id, slowdown in self.gpu_slowdowns:
            if slowdown <= 0:
                raise ValueError(f"slowdown for GPU {gpu_id} must be positive")

    def group_slowdown(self, gpu_ids) -> float:
        """Largest configured slowdown among ``gpu_ids`` (1.0 when none)."""
        if not self.gpu_slowdowns:
            return 1.0
        table = dict(self.gpu_slowdowns)
        return max((table.get(g, 1.0) for g in gpu_ids), default=1.0)


@dataclass
class _PrefillReplica:
    """Run-time state of one prefill replica.

    The reference engine only uses ``queue`` / ``busy`` (the queue holds
    :class:`Request` objects and batches are re-formed at every
    ``PREFILL_DONE``); the fast engine queues integer request rows and
    additionally carries the state of the current coalesced prefill epoch: the
    planned batch rows and their offsets, precomputed start/completion times,
    the precomputed KV-transfer handoffs of every batch, and the truncation
    bookkeeping.
    """

    group_id: int
    cost: ReplicaCostModel
    #: FIFO queue: request rows (fast engine) or :class:`Request` objects
    #: (reference engine)
    queue: Deque = field(default_factory=deque)
    busy: bool = False
    # ---- fast engine coalesced-epoch state ----
    #: rows of every batch of the current epoch, concatenated in execution order
    epoch_rows: Optional[np.ndarray] = None
    #: batch ``k`` spans ``epoch_rows[epoch_offsets[k]:epoch_offsets[k + 1]]``
    epoch_offsets: Optional[np.ndarray] = None
    #: absolute start time of every planned batch
    epoch_starts: Optional[np.ndarray] = None
    #: absolute completion time of every planned batch
    epoch_dones: Optional[np.ndarray] = None
    #: per batch: coalesced KV handoffs as (decode group, rows sorted by
    #: arrival, arrival times) — precomputed in one numpy pass at plan time
    epoch_kv: List[List[Tuple[int, np.ndarray, np.ndarray]]] = field(default_factory=list)
    #: number of leading batches still valid (arrival truncation shortens this)
    epoch_cut: int = 0
    #: epoch generation counter; batch events carrying an older value are stale
    #: (bumped by arrival truncation, superseding epochs, and replica death —
    #: the reference engine uses it purely as a death-incarnation stamp on its
    #: in-flight ``PREFILL_DONE`` event)
    epoch_seq: int = 0
    #: requests of the in-flight batch (reference engine only) — the rows a
    #: capacity-loss fault must dispose alongside the queue
    inflight_batch: Optional[List] = None


@dataclass
class _KVBatch:
    """Cursor over a coalesced array of KV arrivals for one decode replica.

    Replaces one ``KV_ARRIVED`` heap event per request with a single ``KV_BATCH``
    event whose handler drains arrivals in order, yielding back to the heap
    (via :meth:`EventQueue.repush` under its original sequence number, so
    exact-time ties keep their per-event ordering) whenever another event — or
    a not-yet-ingested trace arrival — is due first.
    """

    decode_id: int
    rows: np.ndarray
    times: np.ndarray
    #: index of the next undelivered arrival
    pos: int = 0
    #: heap sequence number assigned at the first push; reused on every repush
    heap_seq: int = -1
    #: death-incarnation of the target decode replica at creation; a mismatch
    #: at pop time means the replica died (the rows were already disposed)
    incarnation: int = 0


def _empty_ids() -> np.ndarray:
    return np.empty(0, dtype=np.int64)


def _empty_times() -> np.ndarray:
    return np.empty(0, dtype=np.float64)


@dataclass
class _DecodeReplica:
    """Run-time state of one decode replica.

    The reference engine tracks the running batch in ``active`` (request_id ->
    [context, remaining]) and queues :class:`Request` objects in ``pending``;
    the fast engine queues request rows and keeps the batch as struct-of-arrays
    (``rows`` / ``ctx`` / ``rem``, sorted ascending by remaining tokens) plus
    the precomputed step boundary times of the current coalesced epoch.
    """

    group_id: int
    cost: ReplicaCostModel
    kv: PagedKVCache
    max_batch: int
    #: request_id -> [current context length, remaining tokens] (reference engine)
    active: Dict[int, List[int]] = field(default_factory=dict)
    #: admission queue: request rows (fast engine) or :class:`Request` objects
    #: (reference engine)
    pending: Deque = field(default_factory=deque)
    stepping: bool = False
    # ---- fast engine struct-of-arrays state (sorted ascending by ``rem``) ----
    rows: np.ndarray = field(default_factory=_empty_ids)
    ctx: np.ndarray = field(default_factory=_empty_ids)
    rem: np.ndarray = field(default_factory=_empty_ids)
    #: absolute times of the current epoch's step boundaries (b_1 .. b_K)
    epoch_times: Optional[np.ndarray] = None
    #: number of steps the epoch was planned with
    epoch_len: int = 0
    #: number of steps the scheduled wake will apply (truncation shortens this)
    epoch_cut: int = 0
    #: epoch generation counter; wake events carrying an older value are stale
    epoch_seq: int = 0
    #: adaptive per-epoch step cap (doubles on quiet replicas, shrinks when
    #: arrivals keep truncating epochs)
    epoch_budget: int = _MIN_EPOCH_BUDGET
    #: death-incarnation counter; KV transfers in flight toward an older
    #: incarnation are stale (their requests were disposed at the death instant)
    incarnation: int = 0
    #: in-flight KV transfers toward this replica: request row (fast engine) or
    #: request id (reference engine) -> payload; a capacity-loss fault disposes
    #: every entry because the destination KV memory is gone
    inflight: Dict[int, object] = field(default_factory=dict)


#: int64 request columns grown together by :meth:`ServingSimulator._ensure_capacity`
#: (``_att`` counts fault dispositions, ``_m_out`` holds the RequestOutcome code)
_INT_COLUMNS = ("_req_id", "_inlen", "_outlen", "_pre_rep", "_dec_rep", "_att", "_m_out")
#: float64 request columns grown together (arrival plus metric timestamps)
_FLOAT_COLUMNS = ("_arr", "_m_pstart", "_m_first", "_m_kvdone", "_m_comp")


class ServingSimulator:
    """Simulates a phase-splitting deployment serving a request trace."""

    def __init__(
        self,
        cluster: Cluster,
        plan: DeploymentPlan,
        model: ModelConfig,
        params: CostModelParams = DEFAULT_PARAMS,
        config: SimulatorConfig = SimulatorConfig(),
    ) -> None:
        if not plan.prefill_groups or not plan.decode_groups:
            raise SimulationError("the deployment plan must contain prefill and decode replicas")
        self.cluster = cluster
        self.plan = plan
        self.model = model
        self.params = params
        self.config = config

        self.prefills: Dict[int, _PrefillReplica] = {}
        for group in plan.prefill_groups:
            if group.plan is None:
                raise SimulationError(f"prefill group {group.group_id} has no parallel plan")
            self.prefills[group.group_id] = _PrefillReplica(
                group_id=group.group_id,
                cost=ReplicaCostModel(
                    cluster, group.plan, model, params,
                    slowdown=config.group_slowdown(group.gpu_ids),
                ),
            )
        self.decodes: Dict[int, _DecodeReplica] = {}
        for group in plan.decode_groups:
            if group.plan is None:
                raise SimulationError(f"decode group {group.group_id} has no parallel plan")
            cost = ReplicaCostModel(
                cluster, group.plan, model, params,
                slowdown=config.group_slowdown(group.gpu_ids),
            )
            capacity_tokens = cost.kv_token_capacity()
            kv = PagedKVCache(
                num_blocks=max(0, capacity_tokens // config.kv_block_size),
                block_size=config.kv_block_size,
            )
            self.decodes[group.group_id] = _DecodeReplica(
                group_id=group.group_id,
                cost=cost,
                kv=kv,
                max_batch=params.max_decode_batch,
            )

        self.routing = plan.routing or RoutingPolicy.uniform(
            [g.group_id for g in plan.prefill_groups],
            [g.group_id for g in plan.decode_groups],
        )
        # Normalized routing distributions and their cumulative tables are fixed
        # for the lifetime of the plan, so they are built once here instead of
        # renormalizing x / x.sum() on every arrival.
        x = self.routing.x
        y = self.routing.y
        self._x_norm = x / x.sum()
        self._x_cdf = np.cumsum(self._x_norm)
        row_sums = y.sum(axis=1, keepdims=True)
        # Same activity threshold as RoutingPolicy's validator: a replica with
        # meaningful traffic share but nowhere to dispatch must fail loudly, not
        # silently route to the clamped last decode group; LP noise below the
        # threshold is unreachable in practice and stays accepted.
        if np.any((x > 1e-12) & (row_sums[:, 0] <= 0)):
            raise SimulationError(
                "routing policy has an active prefill replica with an all-zero dispatch row"
            )
        self._y_norm = y / np.where(row_sums > 0, row_sums, 1.0)
        self._y_cdf = np.cumsum(self._y_norm, axis=1)
        self._pgid_arr = np.asarray(self.routing.prefill_group_ids, dtype=np.int64)
        self._dgid_arr = np.asarray(self.routing.decode_group_ids, dtype=np.int64)

        self._fast = config.engine == "fast"
        #: KV-transport bytes per prompt token at the plan's precision — the
        #: constant factor of every transfer the fast engine prices vectorized
        self._kv_bytes_per_token = kv_cache_bytes_per_token(
            model, bits=plan.kv_transport_bits
        )
        #: (prefill group, decode group) -> (alpha, beta) of the best link, or
        #: ``None`` for co-located pairs (zero-cost transfer); lazily filled
        self._kv_links: Dict[Tuple[int, int], Optional[Tuple[float, float]]] = {}
        self._reset_fast_state()

    # ------------------------------------------------------------------ reset
    def _reset_replicas(self) -> None:
        """Reset run-scoped shared state (RNG, events, clock, replica queues)."""
        self._rng = ensure_rng(self.config.seed)
        self._events = EventQueue()
        self._metrics: Dict[int, RequestMetrics] = {}
        self._prefill_start: Dict[int, float] = {}
        self._decode_target: Dict[int, int] = {}
        self._clock = 0.0
        self._fault_events: Tuple[ReplicaFaultEvent, ...] = ()
        self._fault_pos = 0
        self._faults_active = False
        self._retry = RetryPolicy()
        self._dead_prefills: set = set()
        self._dead_decodes: set = set()
        self._alive_prefill_ids: List[int] = sorted(self.prefills)
        self._alive_decode_ids: List[int] = sorted(self.decodes)
        for replica in self.prefills.values():
            replica.queue.clear()
            replica.busy = False
            replica.epoch_rows = None
            replica.epoch_offsets = None
            replica.epoch_starts = None
            replica.epoch_dones = None
            replica.epoch_kv = []
            replica.epoch_cut = 0
            replica.epoch_seq = 0
            replica.inflight_batch = None
        for replica in self.decodes.values():
            replica.active.clear()
            replica.pending.clear()
            replica.kv.reset()
            replica.stepping = False
            replica.rows = _empty_ids()
            replica.ctx = _empty_ids()
            replica.rem = _empty_ids()
            replica.epoch_times = None
            replica.epoch_len = 0
            replica.epoch_cut = 0
            replica.epoch_seq = 0
            replica.epoch_budget = _MIN_EPOCH_BUDGET
            replica.incarnation = 0
            replica.inflight.clear()

    def _begin_fault_run(
        self, faults: Optional[FaultTimeline], retry: Optional[RetryPolicy]
    ) -> None:
        """Arm the run-scoped fault timeline and retry policy (after a reset)."""
        if faults is None or not faults:
            return
        known = set(self.prefills) | set(self.decodes)
        for entry in faults.events:
            listed = (
                set(entry.dead_prefill)
                | set(entry.dead_decode)
                | set(entry.revived_prefill)
                | set(entry.revived_decode)
            )
            unknown = listed - known
            if unknown:
                raise SimulationError(
                    f"fault timeline names unknown serving groups {sorted(unknown)}"
                )
            if set(entry.dead_prefill) & set(self.decodes) or set(
                entry.dead_decode
            ) & set(self.prefills):
                raise SimulationError("fault timeline mixes up prefill and decode groups")
        self._fault_events = faults.events
        self._fault_pos = 0
        self._faults_active = True
        if retry is not None:
            self._retry = retry

    def _reset_fast_state(self) -> None:
        """Reset the struct-of-arrays request store for a fresh fast run."""
        self._reset_replicas()
        self._cap = 0
        self._n = 0
        self._cursor = 0
        for name in _INT_COLUMNS:
            setattr(self, name, _empty_ids())
        for name in _FLOAT_COLUMNS:
            setattr(self, name, _empty_times())
        self._m_fin = np.empty(0, dtype=bool)
        self._workload_spans: List[Tuple[int, str]] = []
        self._chunk_iter: Optional[Iterator[RequestArrays]] = None
        self._chunks_done = True

    def _ensure_capacity(self, extra: int) -> None:
        """Grow the request columns to hold ``extra`` more rows (doubling)."""
        need = self._n + extra
        if need <= self._cap:
            return
        cap = max(1024, self._cap or 1)
        while cap < need:
            cap *= 2
        n = self._n
        for name in _INT_COLUMNS:
            new = np.zeros(cap, dtype=np.int64)
            new[:n] = getattr(self, name)[:n]
            setattr(self, name, new)
        for name in _FLOAT_COLUMNS:
            new = np.zeros(cap, dtype=np.float64)
            new[:n] = getattr(self, name)[:n]
            setattr(self, name, new)
        new_fin = np.zeros(cap, dtype=bool)
        new_fin[:n] = self._m_fin[:n]
        self._m_fin = new_fin
        self._cap = cap

    # ------------------------------------------------------------------ dispatch
    def _choose_pair(self) -> Tuple[int, int]:
        """Sample a (prefill group, decode group) pair from the routing policy.

        Inverse-CDF sampling against the precomputed cumulative tables; one
        uniform draw per level instead of a full ``rng.choice`` with its per-call
        probability validation.  The fast engine consumes the identical draws
        two-per-request in ingestion order, vectorized per chunk
        (:meth:`_load_chunk`).
        """
        i = int(np.searchsorted(self._x_cdf, self._rng.random(), side="right"))
        i = min(i, self._x_cdf.size - 1)
        row = self._y_cdf[i]
        j = int(np.searchsorted(row, self._rng.random(), side="right"))
        j = min(j, row.size - 1)
        return self.routing.prefill_group_ids[i], self.routing.decode_group_ids[j]

    # ------------------------------------------------------------------ run
    def run(
        self,
        trace: Trace,
        label: str = "thunderserve",
        faults: Optional[FaultTimeline] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> SimulationResult:
        """Replay a trace and return the per-request metrics.

        Every run starts from a clean slate — including the routing RNG — so a
        simulator instance can be reused across traces (e.g. the windowed serving
        of failure scenarios) with results identical to a freshly built one.

        ``faults`` hands the run a compiled
        :class:`~repro.faults.timeline.FaultTimeline`: at each entry's instant
        (fault entries win exact-time ties against simulation events) the listed
        replicas die or revive and every in-flight request on a dead replica
        gets a typed disposition — re-dispatched to a surviving replica after a
        deterministic backoff, or cancelled as ``timed_out`` /
        ``dropped_outage`` — governed by ``retry`` (defaults to
        :class:`~repro.faults.retry.RetryPolicy`'s bounded exponential
        backoff).  Both engines apply identical semantics, so results stay
        bitwise-identical under any timeline.
        """
        if not self._fast:
            return self._run_reference(trace, label, faults=faults, retry=retry)
        self._reset_fast_state()
        self._begin_fault_run(faults, retry)
        self._ensure_capacity(len(trace))
        return self._run_fast(
            iter((trace.arrays(),)),
            requests=trace.requests,
            trace_duration=trace.duration,
            label=label,
        )

    def run_stream(
        self,
        chunks: Iterable[RequestArrays],
        label: str = "thunderserve",
        faults: Optional[FaultTimeline] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> SimulationResult:
        """Replay a streamed trace of arrival-ordered request chunks.

        The fast engine ingests one chunk at a time, so peak memory is bounded
        by the chunk size plus the per-request metric columns — a
        million-request trace never materializes request objects.  Chunks must
        be time-ordered end to end (each chunk's first arrival at or after the
        previous chunk's last), as produced by
        :meth:`~repro.workload.generator.PoissonArrivalGenerator.iter_chunks`.
        The result is bitwise-identical to :meth:`run` on the concatenated
        trace.

        The reference engine has no streaming path: it concatenates the chunks
        into a full in-memory trace first (per-chunk workload tags may collapse
        to ``"mixed"`` on heterogeneous streams), which defeats the memory
        bound but preserves the oracle semantics for equivalence checks.
        """
        if not self._fast:
            return self._run_reference(
                RequestArrays.concat(list(chunks)).to_trace(),
                label,
                faults=faults,
                retry=retry,
            )
        self._reset_fast_state()
        self._begin_fault_run(faults, retry)
        return self._run_fast(iter(chunks), requests=None, trace_duration=None, label=label)

    # ------------------------------------------------------------------ fast loop
    def _load_chunk(self) -> None:
        """Ingest the next non-empty chunk into the request columns.

        Copies the four request columns, then assigns routing targets for the
        whole chunk in one vectorized pass consuming exactly the scalar draws
        :meth:`_choose_pair` would: two uniforms per request, interleaved in
        ingestion order.
        """
        assert self._chunk_iter is not None
        while True:
            try:
                chunk = next(self._chunk_iter)
            except StopIteration:
                self._chunks_done = True
                return
            if len(chunk):
                break
        c = len(chunk)
        n = self._n
        if n and float(chunk.arrival_time[0]) < float(self._arr[n - 1]):
            raise SimulationError("streamed chunks must be time-ordered end to end")
        self._ensure_capacity(c)
        self._req_id[n : n + c] = chunk.request_id
        self._arr[n : n + c] = chunk.arrival_time
        self._inlen[n : n + c] = chunk.input_length
        self._outlen[n : n + c] = chunk.output_length
        draws = self._rng.random(2 * c)
        xi = np.searchsorted(self._x_cdf, draws[0::2], side="right")
        np.minimum(xi, self._x_cdf.size - 1, out=xi)
        yj = np.sum(self._y_cdf[xi] <= draws[1::2, None], axis=1)
        np.minimum(yj, self._y_cdf.shape[1] - 1, out=yj)
        self._pre_rep[n : n + c] = self._pgid_arr[xi]
        self._dec_rep[n : n + c] = self._dgid_arr[yj]
        if not self._workload_spans or self._workload_spans[-1][1] != chunk.workload:
            self._workload_spans.append((n, chunk.workload))
        self._n = n + c

    def _run_fast(
        self,
        chunks: Iterator[RequestArrays],
        requests: Optional[Sequence[Request]],
        trace_duration: Optional[float],
        label: str,
    ) -> SimulationResult:
        """Drive the struct-of-arrays engine over a chunk stream."""
        self._chunk_iter = chunks
        self._chunks_done = False
        events = self._events
        horizon = self.config.max_sim_time
        fault_events = self._fault_events
        num_faults = len(fault_events)
        truncated = False
        while True:
            # Keep the arrival cursor ahead of the heap: whenever the ingested
            # rows are exhausted, pull chunks before deciding what runs next.
            # KV_BATCH drains never advance the cursor, so "cursor < _n or
            # stream done" holds inside every handler as well.
            while self._cursor >= self._n and not self._chunks_done:
                self._load_chunk()
            have_arrival = self._cursor < self._n
            top = events.peek_key()
            if not have_arrival and top is None:
                break
            if self._fault_pos < num_faults:
                # Fault entries win exact-time ties against simulation work:
                # they apply the moment the next candidate event is not
                # strictly earlier (the per-event engine uses the same rule).
                next_t = float(self._arr[self._cursor]) if have_arrival else None
                if top is not None:
                    next_t = top[0] if next_t is None else min(next_t, top[0])
                entry = fault_events[self._fault_pos]
                if next_t is not None and entry.time <= next_t:
                    if horizon is not None and entry.time > horizon:
                        self._fault_pos = num_faults
                    else:
                        self._fault_pos += 1
                        self._apply_fault_fast(entry)
                    continue
            if have_arrival and (top is None or float(self._arr[self._cursor]) <= top[0]):
                # Arrivals win exact-time ties: the per-event engine pushes all
                # ARRIVAL events at setup, giving them the lowest heap seqs.
                at = float(self._arr[self._cursor])
                if horizon is not None and at > horizon:
                    truncated = True
                    break
                row = self._cursor
                self._cursor += 1
                self._clock = max(self._clock, at)
                pre = int(self._pre_rep[row])
                if self._faults_active and pre in self._dead_prefills:
                    self._dispose_fast(row, at)
                else:
                    self._on_prefill_arrival_fast(self.prefills[pre], row, at)
                continue
            event = events.pop()
            if horizon is not None and event.time > horizon:
                truncated = True
                break
            if event.kind is EventKind.DECODE_WAKE:
                replica = self.decodes[event.replica_id]
                if event.payload != replica.epoch_seq:
                    continue  # stale wake from a truncated epoch; no clock update
                self._clock = max(self._clock, event.time)
                self._on_decode_wake(replica, event.time)
            elif event.kind is EventKind.PREFILL_BATCH:
                replica = self.prefills[event.replica_id]
                seq, idx = event.payload
                if seq != replica.epoch_seq or idx >= replica.epoch_cut:
                    continue  # cancelled batch / superseded epoch; no clock update
                self._clock = max(self._clock, event.time)
                self._on_prefill_batch(replica, idx, event.time)
            elif event.kind is EventKind.KV_BATCH:
                holder = event.payload
                if (
                    self._faults_active
                    and holder.incarnation != self.decodes[holder.decode_id].incarnation
                ):
                    continue  # target replica died; the rows were disposed
                self._clock = max(self._clock, event.time)
                self._on_kv_batch(holder, horizon)
            elif event.kind is EventKind.RETRY:
                self._clock = max(self._clock, event.time)
                row = event.payload
                pre = int(self._pre_rep[row])
                if pre in self._dead_prefills:
                    self._dispose_fast(row, event.time)
                else:
                    self._on_prefill_arrival_fast(self.prefills[pre], row, event.time)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unexpected event kind {event.kind}")
        if truncated and horizon is not None:
            self._flush_epochs(horizon)
        return self._finalize_fast(requests, trace_duration, label)

    def _finalize_fast(
        self,
        requests: Optional[Sequence[Request]],
        trace_duration: Optional[float],
        label: str,
    ) -> SimulationResult:
        """Package the metric columns of the processed arrivals as a result.

        Only rows whose arrival was processed are included (a horizon-truncated
        run drops later arrivals entirely, like the per-event engine).  Columns
        are reordered by request id when the ingested ids are not already
        strictly increasing, matching the reference engine's sorted output.
        """
        n = self._cursor
        ids = self._req_id[:n]
        order: Optional[np.ndarray] = None
        if n and not bool(np.all(ids[1:] > ids[:-1])):
            order = np.argsort(ids, kind="stable")

        def col(a: np.ndarray) -> np.ndarray:
            return a[:n].copy() if order is None else a[:n][order]

        arr_col = col(self._arr)
        arrays = MetricArrays(
            request_id=col(self._req_id),
            arrival_time=arr_col,
            input_length=col(self._inlen),
            output_length=col(self._outlen),
            # The per-event engine sets enqueue_time to the arrival-event time,
            # which is exactly the arrival column: share it.
            enqueue_time=arr_col,
            prefill_start=col(self._m_pstart),
            first_token_time=col(self._m_first),
            kv_transfer_done=col(self._m_kvdone),
            completion_time=col(self._m_comp),
            finished=col(self._m_fin),
            prefill_replica=col(self._pre_rep),
            decode_replica=col(self._dec_rep),
            outcome=col(self._m_out),
            attempts=col(self._att),
        )
        backing: Optional[List[Request]] = None
        if requests is not None:
            backing = list(requests[:n])
            if order is not None:
                backing = [backing[i] for i in order.tolist()]
        if trace_duration is None:
            trace_duration = (
                float(self._arr[self._n - 1] - self._arr[0]) if self._n >= 2 else 0.0
            )
        return SimulationResult.from_arrays(
            arrays,
            makespan=self._clock,
            trace_duration=trace_duration,
            label=label,
            requests=backing,
            workload_spans=list(self._workload_spans),
            row_order=order,
        )

    # ----------------------------------------------------- prefill (fast engine)
    def _on_prefill_arrival_fast(
        self, replica: _PrefillReplica, row: int, now: float
    ) -> None:
        """Queue an arrival, truncating the replica's in-flight prefill epoch.

        The per-event engine re-forms batches from the live queue at every batch
        boundary, but FIFO order makes almost every planned batch immune to a
        later arrival: the arrival joins the *back* of the queue, so a planned
        batch that is already full keeps exactly its composition.  Only the
        trailing **underfull** batch (greedy chunking leaves at most one) could
        absorb the newcomer when it is eventually formed — so if that batch has
        not started yet, it alone is cancelled and re-queued ahead of the
        arrival; the replan at the last surviving batch boundary re-forms it
        exactly like the per-event engine would.  Batches already running
        complete as planned.
        """
        replica.queue.append(row)
        if not replica.busy:
            self._plan_prefill_epoch(replica, now)
            return
        assert replica.epoch_starts is not None and replica.epoch_offsets is not None
        offsets = replica.epoch_offsets
        last = replica.epoch_cut - 1
        if offsets[last + 1] - offsets[last] >= self.config.max_prefill_batch_requests:
            return  # every pending batch is full; composition cannot change
        # The trailing batch is underfull: cancel it unless it already started.
        # Arrivals run before equal-time batch boundaries (see _run_fast), so a
        # batch starting exactly at ``now`` is formed *after* this request
        # joined the queue in the per-event engine — start >= now means "not
        # started".  The leading batch always survives: the epoch was planned
        # strictly before ``now`` (an arrival at the plan instant would have
        # been processed first).
        if last >= 1 and float(replica.epoch_starts[last]) >= now:
            assert replica.epoch_rows is not None
            cancelled = replica.epoch_rows[offsets[last] : offsets[last + 1]]
            replica.queue.extendleft(cancelled[::-1].tolist())
            replica.epoch_cut = last

    def _plan_prefill_epoch(self, replica: _PrefillReplica, now: float) -> None:
        """Start a coalesced prefill epoch at ``now``.

        Drains the replica's queue into greedy FIFO batches (up to
        ``max_prefill_batch_requests`` rows each), prices every batch with
        one call into the memoized vectorized
        :meth:`~repro.costmodel.latency.ReplicaCostModel.prefill_latency_grid`,
        and precomputes every batch's start/completion time plus all KV-transfer
        handoffs in a single numpy pass.  One cheap ``PREFILL_BATCH`` event per
        batch replays the precomputed timeline; an arrival mid-epoch truncates
        the not-yet-started tail (see :meth:`_on_prefill_arrival_fast`).
        """
        if not replica.queue:
            replica.busy = False
            replica.epoch_rows = None
            replica.epoch_offsets = None
            replica.epoch_cut = 0
            return
        replica.busy = True
        cap = self.config.max_prefill_batch_requests
        nq = len(replica.queue)
        rows = np.fromiter(replica.queue, dtype=np.int64, count=nq)
        replica.queue.clear()
        offsets = np.append(np.arange(0, nq, cap, dtype=np.int64), nq)
        max_inputs = np.maximum.reduceat(self._inlen[rows], offsets[:-1])
        sizes = np.diff(offsets)
        latencies = replica.cost.prefill_latency_grid(max_inputs, sizes)
        # Sequential accumulation, bitwise-identical to the reference engine's
        # per-batch now + latency chain (np.cumsum accumulates left to right).
        nb = offsets.size - 1
        buffer = np.empty(nb + 1, dtype=np.float64)
        buffer[0] = now
        buffer[1:] = latencies
        times = np.cumsum(buffer)
        replica.epoch_rows = rows
        replica.epoch_offsets = offsets
        replica.epoch_starts = times[:-1]
        replica.epoch_dones = times[1:]
        replica.epoch_cut = nb
        replica.epoch_seq += 1
        replica.epoch_kv = self._plan_epoch_kv(replica, rows, offsets, replica.epoch_dones)
        for k, done in enumerate(replica.epoch_dones.tolist()):
            self._events.push(
                Event(
                    time=done,
                    kind=EventKind.PREFILL_BATCH,
                    replica_id=replica.group_id,
                    payload=(replica.epoch_seq, k),
                )
            )

    def _kv_link(self, prefill_id: int, decode_id: int) -> Optional[Tuple[float, float]]:
        """(alpha, beta) of the best link between two groups; ``None`` if co-located."""
        key = (prefill_id, decode_id)
        if key in self._kv_links:
            return self._kv_links[key]
        src = self.plan.group(prefill_id).gpu_ids
        dst = self.plan.group(decode_id).gpu_ids
        if set(src) & set(dst):
            link = None
        else:
            network = self.cluster.network
            i, j, _bw = network.best_link_between(list(src), list(dst))
            link = (network.latency_s(i, j), network.bandwidth_bytes(i, j))
        self._kv_links[key] = link
        return link

    def _plan_epoch_kv(
        self,
        replica: _PrefillReplica,
        rows: np.ndarray,
        offsets: np.ndarray,
        dones: np.ndarray,
    ) -> List[List[Tuple[int, np.ndarray, np.ndarray]]]:
        """Precompute every batch's KV-transfer handoffs, coalesced per target.

        The arrival time of every multi-token request in the epoch is computed
        in one vectorized pass per decode group (``batch_done + alpha +
        bytes/beta`` against the cached link parameters — bitwise-identical to
        the reference engine's per-request :func:`kv_transfer_seconds` calls),
        then grouped per (batch, decode replica) in first-appearance order (the
        order the per-event engine would push their heap events) and stably
        sorted by arrival time so a single :class:`_KVBatch` cursor can drain
        them in exact heap order.
        """
        nb = offsets.size - 1
        multi = self._outlen[rows] > 1
        if not bool(multi.any()):
            return [[] for _ in range(nb)]
        dec = self._dec_rep[rows]
        batch_of = np.repeat(np.arange(nb), np.diff(offsets))
        times = np.zeros(rows.size, dtype=np.float64)
        for gid in self.decodes:
            mask = multi & (dec == gid)
            if not bool(mask.any()):
                continue
            link = self._kv_link(replica.group_id, gid)
            if link is None:
                times[mask] = dones[batch_of[mask]]
            else:
                alpha, beta = link
                tokens = self._inlen[rows[mask]] + 1
                times[mask] = dones[batch_of[mask]] + (
                    alpha + (self._kv_bytes_per_token * tokens) / beta
                )
        plan: List[List[Tuple[int, np.ndarray, np.ndarray]]] = []
        multi_list = multi.tolist()
        dec_list = dec.tolist()
        offs = offsets.tolist()
        for k in range(nb):
            groups: Dict[int, List[int]] = {}
            for p in range(offs[k], offs[k + 1]):
                if multi_list[p]:
                    groups.setdefault(dec_list[p], []).append(p)
            per_batch: List[Tuple[int, np.ndarray, np.ndarray]] = []
            for gid, positions in groups.items():
                idx = np.asarray(positions, dtype=np.int64)
                t = times[idx]
                order = np.argsort(t, kind="stable")
                per_batch.append((gid, rows[idx[order]], t[order]))
            plan.append(per_batch)
        return plan

    def _on_prefill_batch(self, replica: _PrefillReplica, idx: int, now: float) -> None:
        """Apply one precomputed prefill-batch completion (fast engine).

        Staleness (cancelled batches, superseded epochs, replica death) is
        checked by the main loop before the clock advances.  Under an active
        fault timeline, rows whose decode target is dead at the handoff
        instant are disposed here instead of emitting a doomed KV transfer —
        exactly where the per-event engine makes the same call.
        """
        assert (
            replica.epoch_rows is not None
            and replica.epoch_offsets is not None
            and replica.epoch_starts is not None
        )
        offsets = replica.epoch_offsets
        rows = replica.epoch_rows[offsets[idx] : offsets[idx + 1]]
        self._m_pstart[rows] = replica.epoch_starts[idx]
        self._m_first[rows] = now
        single = rows[self._outlen[rows] <= 1]
        if single.size:
            # Single-token responses finish at prefill; no KV transfer needed.
            self._m_kvdone[single] = now
            self._m_comp[single] = now
            self._m_fin[single] = True
            self._m_out[single] = np.where(
                self._att[single] > 0, _OUT_RETRIED, _OUT_FINISHED
            )
        if not self._faults_active:
            for decode_id, kv_rows, times in replica.epoch_kv[idx]:
                holder = _KVBatch(decode_id=decode_id, rows=kv_rows, times=times)
                holder.heap_seq = self._events.push(
                    Event(
                        time=float(times[0]),
                        kind=EventKind.KV_BATCH,
                        replica_id=decode_id,
                        payload=holder,
                    )
                )
        else:
            dead_rows: List[int] = []
            for decode_id, kv_rows, times in replica.epoch_kv[idx]:
                if decode_id in self._dead_decodes:
                    dead_rows.extend(kv_rows.tolist())
                    continue
                target = self.decodes[decode_id]
                for r in kv_rows.tolist():
                    target.inflight[r] = True
                holder = _KVBatch(
                    decode_id=decode_id,
                    rows=kv_rows,
                    times=times,
                    incarnation=target.incarnation,
                )
                holder.heap_seq = self._events.push(
                    Event(
                        time=float(times[0]),
                        kind=EventKind.KV_BATCH,
                        replica_id=decode_id,
                        payload=holder,
                    )
                )
            if dead_rows:
                dead_rows.sort(key=lambda r: int(self._req_id[r]))
                for r in dead_rows:
                    self._dispose_fast(r, now)
        if idx == replica.epoch_cut - 1:
            # Last valid batch: pick up whatever queued (or was re-queued by a
            # truncation) while the epoch ran.
            self._plan_prefill_epoch(replica, now)

    def _on_kv_batch(self, holder: _KVBatch, horizon: Optional[float]) -> None:
        """Drain a coalesced KV-arrival cursor in exact per-event order.

        Arrivals are delivered while they remain the earliest pending work;
        whenever another heap entry — or a not-yet-processed trace arrival,
        which the per-event engine would hold as an earlier-seq heap event —
        is due first, the cursor is re-inserted at the next arrival under its
        original sequence number so exact-time ties keep per-event ordering.
        """
        times = holder.times
        rows = holder.rows
        n = rows.size
        events = self._events
        while holder.pos < n:
            t = float(times[holder.pos])
            if (
                self._fault_pos < len(self._fault_events)
                and self._fault_events[self._fault_pos].time <= t
            ):
                # A fault entry is due first: yield so the main loop applies it
                # (the entry may dispose this very cursor's remaining rows).
                events.repush(
                    Event(
                        time=t,
                        kind=EventKind.KV_BATCH,
                        replica_id=holder.decode_id,
                        payload=holder,
                    ),
                    holder.heap_seq,
                )
                return
            if horizon is not None and t > horizon:
                # Beyond the horizon: hand the remainder back so the main loop
                # observes (and truncates at) it like the per-event engine.
                events.repush(
                    Event(
                        time=t,
                        kind=EventKind.KV_BATCH,
                        replica_id=holder.decode_id,
                        payload=holder,
                    ),
                    holder.heap_seq,
                )
                return
            if self._cursor < self._n and float(self._arr[self._cursor]) <= t:
                events.repush(
                    Event(
                        time=t,
                        kind=EventKind.KV_BATCH,
                        replica_id=holder.decode_id,
                        payload=holder,
                    ),
                    holder.heap_seq,
                )
                return
            top = events.peek_key()
            if top is not None and top < (t, holder.heap_seq):
                events.repush(
                    Event(
                        time=t,
                        kind=EventKind.KV_BATCH,
                        replica_id=holder.decode_id,
                        payload=holder,
                    ),
                    holder.heap_seq,
                )
                return
            holder.pos += 1
            self._clock = max(self._clock, t)
            self._on_kv_arrived_fast(holder.decode_id, int(rows[holder.pos - 1]), t)

    # ------------------------------------------------------ decode (fast engine)
    def _admit_pending_fast(self, replica: _DecodeReplica) -> int:
        """Admit pending rows while capacity allows; return the admitted count.

        Admitted rows are merged into the replica's ``rem``-sorted arrays by a
        stable sort + binary insertion, preserving the sorted-by-remaining
        invariant the epoch planner relies on.  Relative order among equal
        ``rem`` values is observationally irrelevant: ties complete together
        at the same boundary and every aggregate over them commutes.
        """
        if not replica.pending or replica.rows.size >= replica.max_batch:
            return 0
        new_rows: List[int] = []
        new_ctx: List[int] = []
        new_rem: List[int] = []
        inlen = self._inlen
        outlen = self._outlen
        kv = replica.kv
        while replica.pending and replica.rows.size + len(new_rows) < replica.max_batch:
            row = replica.pending[0]
            i = int(inlen[row])
            o = int(outlen[row])
            if not kv.can_allocate(i + o):
                break
            replica.pending.popleft()
            kv.allocate(row, i + o)
            # The prefill already produced the first output token.
            new_rows.append(row)
            new_ctx.append(i + 1)
            new_rem.append(o - 1)
        if not new_rows:
            return 0
        rows_a = np.asarray(new_rows, dtype=np.int64)
        ctx_a = np.asarray(new_ctx, dtype=np.int64)
        rem_a = np.asarray(new_rem, dtype=np.int64)
        if len(new_rows) > 1:
            order = np.argsort(rem_a, kind="stable")
            rows_a = rows_a[order]
            ctx_a = ctx_a[order]
            rem_a = rem_a[order]
        if replica.rows.size == 0:
            replica.rows = rows_a
            replica.ctx = ctx_a
            replica.rem = rem_a
        else:
            pos = np.searchsorted(replica.rem, rem_a)
            replica.rows = np.insert(replica.rows, pos, rows_a)
            replica.ctx = np.insert(replica.ctx, pos, ctx_a)
            replica.rem = np.insert(replica.rem, pos, rem_a)
        return len(new_rows)

    def _plan_epoch(self, replica: _DecodeReplica, now: float, admit: bool = True) -> None:
        """Start a coalesced decode epoch at ``now``.

        The batch composition cannot change before the earliest completion
        (``rem[0]`` steps away), so the epoch spans ``min(rem[0],
        epoch_budget)`` steps with a **constant batch**: the mean context of
        step ``t`` is the closed form ``trunc((ctx_sum + n*(t-1)) / n)``, and
        all step latencies price in one vectorized call (a scalar-memo loop
        serves epochs of at most ``_SMALL_EPOCH_STEPS`` steps, skipping numpy
        fixed costs).  One DECODE_WAKE event stands in for the whole jump; a KV
        arrival mid-epoch truncates it at the first boundary after the arrival,
        and an epoch ending at the budget (no completion, no admission) simply
        replans from unchanged state — a pure scheduling horizon, invisible in
        the metrics.
        """
        if admit:
            self._admit_pending_fast(replica)
        n = int(replica.rows.size)
        if n == 0:
            replica.stepping = False
            replica.epoch_times = None
            replica.epoch_len = 0
            replica.epoch_cut = 0
            return
        replica.stepping = True
        ctx_sum = int(replica.ctx.sum())
        k = min(int(replica.rem[0]), replica.epoch_budget)
        if k <= _SMALL_EPOCH_STEPS:
            cost = replica.cost
            acc = now
            times_list: List[float] = []
            for t in range(k):
                # int(int / int): correctly-rounded float64 division then
                # truncation — bitwise the reference's int(np.mean([...])).
                mean = int((ctx_sum + n * t) / n)
                if mean < 1:
                    mean = 1
                acc = acc + cost.decode_step_memo(n, mean)
                times_list.append(acc)
            replica.epoch_times = np.asarray(times_list, dtype=np.float64)
        else:
            steps = np.arange(k, dtype=np.int64)
            context_sum = ctx_sum + n * steps
            mean_ctx = (context_sum.astype(np.float64) / float(n)).astype(np.int64)
            np.maximum(mean_ctx, 1, out=mean_ctx)
            latencies = replica.cost.decode_step_grid(
                np.full(k, n, dtype=np.int64), mean_ctx
            )
            # Sequential accumulation, bitwise-identical to the reference
            # engine's now += latency chain (np.cumsum adds left to right).
            buffer = np.empty(k + 1, dtype=np.float64)
            buffer[0] = now
            buffer[1:] = latencies
            replica.epoch_times = np.cumsum(buffer)[1:]
        replica.epoch_len = k
        replica.epoch_cut = k
        replica.epoch_seq += 1
        self._events.push(
            Event(
                time=float(replica.epoch_times[-1]),
                kind=EventKind.DECODE_WAKE,
                replica_id=replica.group_id,
                payload=replica.epoch_seq,
            )
        )

    def _on_decode_wake(self, replica: _DecodeReplica, now: float) -> None:
        """Apply an epoch's steps at its wake and extend or replan.

        A full-length wake (no truncation) replans from the completion
        boundary, doubling the budget when the epoch consumed it whole.  A
        truncated wake admits the arrival that caused the truncation; when
        nothing could be admitted (capacity), the **surviving suffix** of the
        old plan is reinstated as the next epoch without re-pricing — the
        remaining boundary times are a pure function of batch state the
        truncation did not change.
        """
        applied = replica.epoch_cut
        planned = replica.epoch_len
        completed = self._apply_steps(replica, applied)
        if applied < planned:
            # Interrupted by a KV arrival: shrink the budget toward the
            # observed interruption distance.
            replica.epoch_budget = max(_MIN_EPOCH_BUDGET, 2 * applied)
            if completed == 0:
                admitted = self._admit_pending_fast(replica)
                if admitted == 0 and replica.rows.size:
                    assert replica.epoch_times is not None
                    times = replica.epoch_times[applied:planned]
                    replica.epoch_times = times
                    replica.epoch_len = int(times.size)
                    replica.epoch_cut = int(times.size)
                    replica.epoch_seq += 1
                    self._events.push(
                        Event(
                            time=float(times[-1]),
                            kind=EventKind.DECODE_WAKE,
                            replica_id=replica.group_id,
                            payload=replica.epoch_seq,
                        )
                    )
                    return
                self._plan_epoch(replica, now, admit=False)
                return
            self._plan_epoch(replica, now)
            return
        if planned == replica.epoch_budget:
            # The epoch ran its whole budget undisturbed: coalesce harder.
            replica.epoch_budget = min(_MAX_EPOCH_BUDGET, 2 * replica.epoch_budget)
        self._plan_epoch(replica, now)

    def _apply_steps(self, replica: _DecodeReplica, steps: int) -> int:
        """Advance the batch by ``steps`` tokens; return the completion count.

        Epochs never extend past the earliest completion, so every finishing
        row has ``rem == steps`` exactly and completes at the final applied
        boundary ``epoch_times[steps - 1]``; the sorted-by-``rem`` invariant
        makes the finishers a prefix slice.
        """
        if steps <= 0:
            return 0
        n = int(replica.rows.size)
        k = int(np.searchsorted(replica.rem, steps, side="right"))
        if k:
            assert replica.epoch_times is not None
            done = float(replica.epoch_times[steps - 1])
            finished_rows = replica.rows[:k]
            self._m_comp[finished_rows] = done
            self._m_fin[finished_rows] = True
            self._m_out[finished_rows] = np.where(
                self._att[finished_rows] > 0, _OUT_RETRIED, _OUT_FINISHED
            )
            kv = replica.kv
            for row in finished_rows.tolist():
                kv.free(row)
            if k == n:
                replica.rows = _empty_ids()
                replica.ctx = _empty_ids()
                replica.rem = _empty_ids()
                return k
            replica.rows = replica.rows[k:]
            replica.ctx = replica.ctx[k:]
            replica.rem = replica.rem[k:]
        replica.ctx = replica.ctx + steps
        replica.rem = replica.rem - steps
        return k

    def _on_kv_arrived_fast(self, replica_id: int, row: int, now: float) -> None:
        """Record a KV arrival and truncate the replica's epoch if admissible."""
        self._m_kvdone[row] = now
        replica = self.decodes[replica_id]
        if self._faults_active:
            replica.inflight.pop(row, None)
        head_was_blocked = bool(replica.pending)
        replica.pending.append(row)
        if not replica.stepping:
            self._plan_epoch(replica, now)
            return
        if head_was_blocked:
            # A FIFO head already waiting means admission is blocked on capacity
            # that only a completion can free — the epoch end already covers it.
            return
        assert replica.epoch_times is not None
        times = replica.epoch_times[: replica.epoch_cut]
        # First step boundary at or after the arrival: that is where the
        # reference engine's per-step admission would pick the request up.
        idx = int(np.searchsorted(times, now, side="left"))
        steps = idx + 1
        if steps < replica.epoch_cut:
            replica.epoch_cut = steps
            replica.epoch_seq += 1
            self._events.push(
                Event(
                    time=float(times[idx]),
                    kind=EventKind.DECODE_WAKE,
                    replica_id=replica.group_id,
                    payload=replica.epoch_seq,
                )
            )

    # ------------------------------------------------------- faults (fast engine)
    def _dispose_fast(self, row: int, now: float) -> None:
        """Apply the typed disposition of one fault-stricken request (fast).

        The request's current attempt is lost (its per-attempt stamps reset);
        under the run's :class:`~repro.faults.retry.RetryPolicy` it is either
        re-dispatched to a hash-routed surviving (prefill, decode) pair after a
        deterministic backoff delay, or cancelled — ``dropped_outage`` when no
        capacity survives or the retry budget is exhausted, ``timed_out`` when
        the retry would land past the per-request deadline.  Terminal outcomes
        keep the partial stamps of the failed attempt.
        """
        att = int(self._att[row]) + 1
        self._att[row] = att
        policy = self._retry
        alive_p = self._alive_prefill_ids
        alive_d = self._alive_decode_ids
        if not alive_p or not alive_d or att > policy.max_retries:
            self._m_out[row] = _OUT_DROPPED
            return
        rid = int(self._req_id[row])
        seed = self.config.seed
        retry_time = now + policy.backoff_delay(seed, rid, att)
        if (
            policy.deadline_s is not None
            and retry_time - float(self._arr[row]) > policy.deadline_s
        ):
            self._m_out[row] = _OUT_TIMED_OUT
            return
        up = fault_uniform("route-prefill", seed, rid, att)
        ud = fault_uniform("route-decode", seed, rid, att)
        self._pre_rep[row] = alive_p[int(up * len(alive_p))]
        self._dec_rep[row] = alive_d[int(ud * len(alive_d))]
        self._m_pstart[row] = 0.0
        self._m_first[row] = 0.0
        self._m_kvdone[row] = 0.0
        self._m_comp[row] = 0.0
        self._m_fin[row] = False
        self._m_out[row] = 0
        self._events.push(Event(time=retry_time, kind=EventKind.RETRY, payload=row))

    def _apply_fault_fast(self, entry: ReplicaFaultEvent) -> None:
        """Apply one fault-timeline entry at its instant (fast engine).

        Deaths first: every dead replica is wiped (queues, epoch state, KV
        cache, in-flight transfers toward it) and its victims — collected
        across all replicas dying at this instant — are disposed in request-id
        order, so retry scheduling is deterministic and engine-independent.
        Revivals simply mark the (already clean) replica routable again.
        """
        t = entry.time
        victims: List[int] = []
        for gid in entry.dead_prefill:
            if gid in self._dead_prefills:
                continue
            self._dead_prefills.add(gid)
            replica = self.prefills[gid]
            victims.extend(int(r) for r in replica.queue)
            if replica.busy and replica.epoch_rows is not None:
                # Batches whose completion fired strictly before ``t`` already
                # delivered; everything later (ties included — fault entries
                # win) is lost with the replica.
                cut = replica.epoch_cut
                assert replica.epoch_dones is not None and replica.epoch_offsets is not None
                fired = int(np.searchsorted(replica.epoch_dones[:cut], t, side="left"))
                offsets = replica.epoch_offsets
                victims.extend(
                    replica.epoch_rows[offsets[fired] : offsets[cut]].tolist()
                )
            replica.queue.clear()
            replica.busy = False
            replica.epoch_rows = None
            replica.epoch_offsets = None
            replica.epoch_starts = None
            replica.epoch_dones = None
            replica.epoch_kv = []
            replica.epoch_cut = 0
            replica.epoch_seq += 1
        for gid in entry.dead_decode:
            if gid in self._dead_decodes:
                continue
            self._dead_decodes.add(gid)
            replica = self.decodes[gid]
            if replica.stepping and replica.epoch_times is not None:
                # Steps that fired strictly before ``t`` (ties lose — fault
                # entries win) delivered their tokens; the reference engine
                # advanced its clock through each of them, so replay the last
                # fired boundary here to keep makespans bitwise-identical.
                times = replica.epoch_times[: replica.epoch_cut]
                fired = int(np.searchsorted(times, t, side="left"))
                if fired > 0:
                    self._clock = max(self._clock, float(times[fired - 1]))
            victims.extend(replica.rows.tolist())
            victims.extend(int(r) for r in replica.pending)
            victims.extend(replica.inflight.keys())
            replica.rows = _empty_ids()
            replica.ctx = _empty_ids()
            replica.rem = _empty_ids()
            replica.pending.clear()
            replica.inflight.clear()
            replica.kv.reset()
            replica.stepping = False
            replica.epoch_times = None
            replica.epoch_len = 0
            replica.epoch_cut = 0
            replica.epoch_seq += 1
            replica.epoch_budget = _MIN_EPOCH_BUDGET
            replica.incarnation += 1
        for gid in entry.revived_prefill:
            self._dead_prefills.discard(gid)
        for gid in entry.revived_decode:
            self._dead_decodes.discard(gid)
        self._alive_prefill_ids = sorted(
            g for g in self.prefills if g not in self._dead_prefills
        )
        self._alive_decode_ids = sorted(
            g for g in self.decodes if g not in self._dead_decodes
        )
        victims.sort(key=lambda r: int(self._req_id[r]))
        for row in victims:
            self._dispose_fast(row, t)

    def _flush_epochs(self, horizon: float) -> None:
        """Complete in-flight epoch steps up to ``horizon`` after a truncated run.

        The reference engine processes every per-step event with time <= horizon
        before stopping; coalesced epochs must replay the same boundaries so
        horizon-bounded runs record identical completions.
        """
        for replica in self.decodes.values():
            if not replica.stepping or replica.epoch_times is None:
                continue
            times = replica.epoch_times[: replica.epoch_cut]
            steps = int(np.searchsorted(times, horizon, side="right"))
            if steps > 0:
                self._apply_steps(replica, steps)
                self._clock = max(self._clock, float(times[steps - 1]))

    # ------------------------------------------------------------------ reference
    def _run_reference(
        self,
        trace: Trace,
        label: str,
        faults: Optional[FaultTimeline] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> SimulationResult:
        """Replay a trace through the per-event oracle engine.

        Fault semantics mirror the fast engine exactly: fault entries win
        exact-time ties against heap events, death-stale events (a prefill
        batch, KV transfer, or decode step whose replica died while it was in
        flight) advance no clock, and dispositions use the same hash-based
        jitter and routing — which is what keeps results bitwise-identical
        under any timeline.
        """
        self._reset_replicas()
        self._begin_fault_run(faults, retry)
        for request in trace:
            self._events.push(
                Event(time=request.arrival_time, kind=EventKind.ARRIVAL, payload=request)
            )
        horizon = self.config.max_sim_time
        events = self._events
        fault_events = self._fault_events
        num_faults = len(fault_events)
        while True:
            top = events.peek_key()
            if top is None:
                break
            if self._fault_pos < num_faults:
                # Fault entries win exact-time ties against simulation work
                # (same rule as the fast engine's arrival/heap race).
                entry = fault_events[self._fault_pos]
                if entry.time <= top[0]:
                    if horizon is not None and entry.time > horizon:
                        self._fault_pos = num_faults
                    else:
                        self._fault_pos += 1
                        self._apply_fault_reference(entry)
                    continue
            event = events.pop()
            if horizon is not None and event.time > horizon:
                break
            if event.kind is EventKind.ARRIVAL:
                self._clock = max(self._clock, event.time)
                self._on_arrival(event.payload, event.time)
            elif event.kind is EventKind.PREFILL_DONE:
                replica = self.prefills[event.replica_id]
                seq, batch = event.payload
                if seq != replica.epoch_seq:
                    continue  # replica died while the batch ran; no clock update
                self._clock = max(self._clock, event.time)
                self._on_prefill_done(event.replica_id, batch, event.time)
            elif event.kind is EventKind.KV_ARRIVED:
                incarnation, request = event.payload
                if incarnation != self.decodes[event.replica_id].incarnation:
                    continue  # target replica died; the request was disposed
                self._clock = max(self._clock, event.time)
                self._on_kv_arrived(event.replica_id, request, event.time)
            elif event.kind is EventKind.DECODE_STEP:
                replica = self.decodes[event.replica_id]
                if event.payload != replica.epoch_seq:
                    continue  # replica died mid-step; no clock update
                self._clock = max(self._clock, event.time)
                self._on_decode_step(event.replica_id, event.time)
            elif event.kind is EventKind.RETRY:
                self._clock = max(self._clock, event.time)
                self._on_retry_reference(event.payload, event.time)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unexpected event kind {event.kind}")
        metrics = [self._metrics[rid] for rid in sorted(self._metrics)]
        return SimulationResult(
            metrics=metrics,
            makespan=self._clock,
            trace_duration=trace.duration,
            label=label,
        )

    def _on_arrival(self, request: Request, now: float) -> None:
        prefill_id, decode_id = self._choose_pair()
        metrics = RequestMetrics(request=request, enqueue_time=now)
        metrics.prefill_replica = prefill_id
        metrics.decode_replica = decode_id
        self._metrics[request.request_id] = metrics
        self._decode_target[request.request_id] = decode_id
        if self._faults_active and prefill_id in self._dead_prefills:
            self._dispose_reference(request, now)
            return
        replica = self.prefills[prefill_id]
        replica.queue.append(request)
        if not replica.busy:
            self._start_prefill_batch(replica, now)

    def _start_prefill_batch(self, replica: _PrefillReplica, now: float) -> None:
        if not replica.queue:
            replica.busy = False
            replica.inflight_batch = None
            return
        batch: List[Request] = []
        while replica.queue and len(batch) < self.config.max_prefill_batch_requests:
            batch.append(replica.queue.popleft())
        replica.busy = True
        replica.inflight_batch = batch
        max_input = max(r.input_length for r in batch)
        latency = replica.cost.prefill_latency(max_input, batch_size=len(batch))
        for request in batch:
            self._prefill_start[request.request_id] = now
        self._events.push(
            Event(
                time=now + latency,
                kind=EventKind.PREFILL_DONE,
                replica_id=replica.group_id,
                payload=(replica.epoch_seq, batch),
            )
        )

    def _on_prefill_done(self, replica_id: int, batch: List[Request], now: float) -> None:
        replica = self.prefills[replica_id]
        replica.inflight_batch = None
        prefill_group = self.plan.group(replica_id)
        dead_targets: List[Request] = []
        for request in batch:
            metrics = self._metrics[request.request_id]
            metrics.prefill_start = self._prefill_start[request.request_id]
            metrics.first_token_time = now
            decode_id = self._decode_target[request.request_id]
            if request.output_length <= 1:
                # Single-token responses finish at prefill; no KV transfer needed.
                metrics.kv_transfer_done = now
                metrics.completion_time = now
                metrics.finished = True
                metrics.outcome = (
                    RequestOutcome.RETRIED_THEN_FINISHED
                    if metrics.attempts > 0
                    else RequestOutcome.FINISHED
                )
                continue
            if self._faults_active and decode_id in self._dead_decodes:
                # The decode target died while prefill ran: the KV has nowhere
                # to land, so the request is disposed at the handoff instant.
                dead_targets.append(request)
                continue
            decode_group = self.plan.group(decode_id)
            transfer = kv_transfer_seconds(
                self.cluster.network,
                prefill_group.gpu_ids,
                decode_group.gpu_ids,
                self.model,
                num_tokens=request.input_length + 1,
                batch_size=1,
                bits=self.plan.kv_transport_bits,
            )
            target = self.decodes[decode_id]
            if self._faults_active:
                target.inflight[request.request_id] = request
            self._events.push(
                Event(
                    time=now + transfer,
                    kind=EventKind.KV_ARRIVED,
                    replica_id=decode_id,
                    payload=(target.incarnation, request),
                )
            )
        if dead_targets:
            dead_targets.sort(key=lambda r: r.request_id)
            for request in dead_targets:
                self._dispose_reference(request, now)
        # Keep the prefill replica busy with the next batch, if any.
        self._start_prefill_batch(replica, now)

    def _on_kv_arrived(self, replica_id: int, request: Request, now: float) -> None:
        metrics = self._metrics[request.request_id]
        metrics.kv_transfer_done = now
        replica = self.decodes[replica_id]
        if self._faults_active:
            replica.inflight.pop(request.request_id, None)
        replica.pending.append(request)
        if not replica.stepping:
            self._schedule_decode_step(replica, now)

    def _admit_pending(self, replica: _DecodeReplica) -> None:
        """Admit pending requests while KV memory and the batch cap allow."""
        while replica.pending and len(replica.active) < replica.max_batch:
            request = replica.pending[0]
            final_context = request.total_tokens
            if not replica.kv.can_allocate(final_context):
                break
            replica.pending.popleft()
            replica.kv.allocate(request.request_id, final_context)
            # The prefill already produced the first output token.
            replica.active[request.request_id] = [
                request.input_length + 1,
                request.output_length - 1,
            ]

    def _schedule_decode_step(self, replica: _DecodeReplica, now: float) -> None:
        self._admit_pending(replica)
        if not replica.active:
            replica.stepping = False
            return
        replica.stepping = True
        batch = len(replica.active)
        mean_context = int(np.mean([state[0] for state in replica.active.values()]))
        latency = replica.cost.decode_step_latency(batch, max(1, mean_context))
        self._events.push(
            Event(
                time=now + latency,
                kind=EventKind.DECODE_STEP,
                replica_id=replica.group_id,
                payload=replica.epoch_seq,
            )
        )

    def _on_decode_step(self, replica_id: int, now: float) -> None:
        replica = self.decodes[replica_id]
        finished_ids: List[int] = []
        for request_id, state in replica.active.items():
            state[0] += 1
            state[1] -= 1
            if state[1] <= 0:
                finished_ids.append(request_id)
        for request_id in finished_ids:
            del replica.active[request_id]
            replica.kv.free(request_id)
            metrics = self._metrics[request_id]
            metrics.completion_time = now
            metrics.finished = True
            metrics.outcome = (
                RequestOutcome.RETRIED_THEN_FINISHED
                if metrics.attempts > 0
                else RequestOutcome.FINISHED
            )
        self._schedule_decode_step(replica, now)

    # -------------------------------------------------- faults (reference engine)
    def _dispose_reference(self, request: Request, now: float) -> None:
        """Typed disposition of one fault-stricken request (per-event oracle).

        Mirrors :meth:`_dispose_fast` exactly — same attempt accounting, same
        hash-based backoff/jitter and routing draws, same terminal causes —
        operating on :class:`~repro.core.types.RequestMetrics` objects instead
        of metric columns.
        """
        metrics = self._metrics[request.request_id]
        metrics.attempts += 1
        att = metrics.attempts
        policy = self._retry
        alive_p = self._alive_prefill_ids
        alive_d = self._alive_decode_ids
        if not alive_p or not alive_d or att > policy.max_retries:
            metrics.outcome = RequestOutcome.DROPPED_OUTAGE
            return
        rid = request.request_id
        seed = self.config.seed
        retry_time = now + policy.backoff_delay(seed, rid, att)
        if (
            policy.deadline_s is not None
            and retry_time - request.arrival_time > policy.deadline_s
        ):
            metrics.outcome = RequestOutcome.TIMED_OUT
            return
        up = fault_uniform("route-prefill", seed, rid, att)
        ud = fault_uniform("route-decode", seed, rid, att)
        metrics.prefill_replica = alive_p[int(up * len(alive_p))]
        metrics.decode_replica = alive_d[int(ud * len(alive_d))]
        self._decode_target[rid] = metrics.decode_replica
        metrics.prefill_start = 0.0
        metrics.first_token_time = 0.0
        metrics.kv_transfer_done = 0.0
        metrics.completion_time = 0.0
        metrics.finished = False
        metrics.outcome = RequestOutcome.PENDING
        self._prefill_start.pop(rid, None)
        self._events.push(Event(time=retry_time, kind=EventKind.RETRY, payload=request))

    def _on_retry_reference(self, request: Request, now: float) -> None:
        """Re-dispatch a retried request at its backoff expiry (oracle)."""
        metrics = self._metrics[request.request_id]
        prefill_id = metrics.prefill_replica
        if prefill_id in self._dead_prefills:
            # The routed target died during the backoff: dispose again.
            self._dispose_reference(request, now)
            return
        replica = self.prefills[prefill_id]
        replica.queue.append(request)
        if not replica.busy:
            self._start_prefill_batch(replica, now)

    def _apply_fault_reference(self, entry: ReplicaFaultEvent) -> None:
        """Apply one fault-timeline entry at its instant (per-event oracle).

        Victim collection mirrors :meth:`_apply_fault_fast`: a dead prefill
        loses its queue plus the in-flight batch (its ``PREFILL_DONE`` goes
        stale via ``epoch_seq``); a dead decode loses its running batch,
        admission queue, and every KV transfer in flight toward it (stale via
        ``incarnation``).  Victims across all deaths at this instant are
        disposed in request-id order.
        """
        t = entry.time
        victims: List[Request] = []
        for gid in entry.dead_prefill:
            if gid in self._dead_prefills:
                continue
            self._dead_prefills.add(gid)
            replica = self.prefills[gid]
            victims.extend(replica.queue)
            if replica.inflight_batch:
                victims.extend(replica.inflight_batch)
            replica.queue.clear()
            replica.busy = False
            replica.inflight_batch = None
            replica.epoch_seq += 1
        for gid in entry.dead_decode:
            if gid in self._dead_decodes:
                continue
            self._dead_decodes.add(gid)
            replica = self.decodes[gid]
            victims.extend(self._metrics[rid].request for rid in replica.active)
            victims.extend(replica.pending)
            victims.extend(replica.inflight.values())
            replica.active.clear()
            replica.pending.clear()
            replica.inflight.clear()
            replica.kv.reset()
            replica.stepping = False
            replica.epoch_seq += 1
            replica.incarnation += 1
        for gid in entry.revived_prefill:
            self._dead_prefills.discard(gid)
        for gid in entry.revived_decode:
            self._dead_decodes.discard(gid)
        self._alive_prefill_ids = sorted(
            g for g in self.prefills if g not in self._dead_prefills
        )
        self._alive_decode_ids = sorted(
            g for g in self.decodes if g not in self._dead_decodes
        )
        victims.sort(key=lambda r: r.request_id)
        for request in victims:
            self._dispose_reference(request, t)


__all__ = ["ServingSimulator", "SimulatorConfig", "ENGINES"]

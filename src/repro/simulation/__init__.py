"""Discrete-event LLM serving simulator.

The simulator is the evaluation testbed of this reproduction: it replays a request
trace against a deployment plan, modelling request queueing, prefill execution,
KV-cache transfer over the cluster network, continuous-batching decode and (for
co-locating baselines) prefill/decode interference.  Per-request service times come
from the same roofline cost model the scheduler uses, but the simulator adds the
queueing and batching dynamics that the scheduler's analytic estimator
approximates — Figure 19 of the paper (and our ``fig19`` experiment) quantifies how
close the two are.

Two engines share one event-time semantics: the vectorized ``fast`` engine
(struct-of-arrays request lifecycle, coalesced epochs, streamed chunk input via
:meth:`~repro.simulation.engine.ServingSimulator.run_stream`) and the per-event
``reference`` oracle it must match bitwise — see ``docs/simulation.md`` for the
engine internals and the equivalence contract.
"""

from repro.simulation.events import Event, EventKind, EventQueue
from repro.simulation.metrics import MetricArrays, SimulationResult, summarize_requests
from repro.simulation.engine import ServingSimulator, SimulatorConfig
from repro.simulation.colocated import ColocatedSimulator

__all__ = [
    "Event",
    "EventKind",
    "EventQueue",
    "MetricArrays",
    "SimulationResult",
    "summarize_requests",
    "ServingSimulator",
    "SimulatorConfig",
    "ColocatedSimulator",
]

"""Simulation results and metric aggregation.

The paper's evaluation reports two families of numbers:

* **SLO attainment** — the percentage of requests whose TTFT / TPOT / E2E latency
  stays under a deadline, swept over SLO scales (Figures 7, 8, 11, 12, 14);
* **throughput** — generated tokens (or requests) per second (Figures 6, 9,
  Tables 5 and 8).

:class:`SimulationResult` wraps the per-request metrics produced by a simulator run
and exposes those aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.core.types import RequestMetrics, SLOSpec, SLOType


def summarize_requests(metrics: Sequence[RequestMetrics]) -> Dict[str, float]:
    """Mean latency components over the finished requests of a run."""
    finished = [m for m in metrics if m.finished]
    if not finished:
        return {
            "num_finished": 0.0,
            "mean_ttft": float("nan"),
            "mean_tpot": float("nan"),
            "mean_e2e": float("nan"),
            "mean_queue": float("nan"),
            "mean_prefill": float("nan"),
            "mean_kv_transfer": float("nan"),
            "mean_decode": float("nan"),
        }
    return {
        "num_finished": float(len(finished)),
        "mean_ttft": float(np.mean([m.ttft for m in finished])),
        "mean_tpot": float(np.mean([m.tpot for m in finished])),
        "mean_e2e": float(np.mean([m.e2e_latency for m in finished])),
        "mean_queue": float(np.mean([m.queue_time for m in finished])),
        "mean_prefill": float(np.mean([m.prefill_time for m in finished])),
        "mean_kv_transfer": float(np.mean([m.kv_transfer_time for m in finished])),
        "mean_decode": float(np.mean([m.decode_time for m in finished])),
    }


@dataclass
class SimulationResult:
    """Per-request metrics plus run-level aggregates of one simulation."""

    metrics: List[RequestMetrics]
    #: simulation time at which the last event was processed
    makespan: float
    #: wall-clock duration of the simulated request trace (arrival span)
    trace_duration: float
    #: label of the system / plan that produced the run (for reporting)
    label: str = ""

    # ------------------------------------------------------------------ basics
    @property
    def num_requests(self) -> int:
        """Number of requests injected."""
        return len(self.metrics)

    @property
    def finished(self) -> List[RequestMetrics]:
        """Metrics of requests that completed."""
        return [m for m in self.metrics if m.finished]

    @property
    def num_finished(self) -> int:
        """Number of completed requests."""
        return len(self.finished)

    @property
    def completion_rate(self) -> float:
        """Fraction of requests that completed within the simulation horizon."""
        if not self.metrics:
            return 0.0
        return self.num_finished / self.num_requests

    # ------------------------------------------------------------------ latency
    def mean(self, slo_type: SLOType) -> float:
        """Mean latency of the given type over finished requests."""
        finished = self.finished
        if not finished:
            return float("nan")
        return float(np.mean([m.value_for(slo_type) for m in finished]))

    def percentile(self, slo_type: SLOType, q: float) -> float:
        """Latency percentile (``q`` in [0, 100]) of the given type."""
        finished = self.finished
        if not finished:
            return float("nan")
        return float(np.percentile([m.value_for(slo_type) for m in finished], q))

    def summary(self) -> Dict[str, float]:
        """Mean latency component breakdown (see :func:`summarize_requests`)."""
        return summarize_requests(self.metrics)

    # ------------------------------------------------------------------ SLO
    def slo_attainment(self, slo: SLOSpec, slo_type: SLOType = SLOType.E2E) -> float:
        """Fraction of *all* requests meeting the SLO (unfinished requests miss)."""
        if not self.metrics:
            return 0.0
        hits = sum(1 for m in self.metrics if slo.is_met(m, slo_type))
        return hits / len(self.metrics)

    def attainment_curve(
        self,
        slo_scales: Iterable[float],
        reference,
        slo_type: SLOType = SLOType.E2E,
    ) -> List[float]:
        """SLO attainment swept over SLO scales (the Figure 7/8 curves).

        ``reference`` is a :class:`~repro.costmodel.reference.ReferenceLatency`
        providing ``slo_spec(scale)``.
        """
        return [self.slo_attainment(reference.slo_spec(s), slo_type) for s in slo_scales]

    def min_scale_for_attainment(
        self,
        target: float,
        reference,
        slo_type: SLOType = SLOType.E2E,
        scales: Optional[Sequence[float]] = None,
    ) -> float:
        """Smallest SLO scale achieving ``target`` attainment (the "latency deadline").

        The paper reports, for a target attainment goal such as 90 % or 99 %, the
        minimum latency deadline (SLO scale) that reaches it.  Returns ``inf`` when
        even the largest probed scale falls short.
        """
        probe = list(scales) if scales is not None else [x / 4 for x in range(1, 241)]
        for s in sorted(probe):
            if self.slo_attainment(reference.slo_spec(s), slo_type) >= target:
                return float(s)
        return float("inf")

    # ------------------------------------------------------------------ throughput
    @property
    def output_token_throughput(self) -> float:
        """Generated tokens per second over the run (the paper's token throughput)."""
        finished = self.finished
        if not finished or self.makespan <= 0:
            return 0.0
        tokens = sum(m.request.output_length for m in finished)
        return tokens / self.makespan

    @property
    def total_token_throughput(self) -> float:
        """Prompt + generated tokens per second over the run."""
        finished = self.finished
        if not finished or self.makespan <= 0:
            return 0.0
        tokens = sum(m.request.total_tokens for m in finished)
        return tokens / self.makespan

    @property
    def request_throughput(self) -> float:
        """Completed requests per second over the run."""
        if self.makespan <= 0:
            return 0.0
        return self.num_finished / self.makespan


def merge_results(
    results: Sequence[SimulationResult], label: str = "merged"
) -> SimulationResult:
    """Combine sequential window runs of one trace into a single result.

    Event times are absolute within a trace, so the merged makespan is the latest
    clock reached by any window and the merged trace duration spans from the
    first window's start to the last window's end.  Used by the scenario sweep to
    aggregate failure-injection runs served window-by-window.
    """
    if not results:
        return SimulationResult(metrics=[], makespan=0.0, trace_duration=0.0, label=label)
    metrics = [m for r in results for m in r.metrics]
    metrics.sort(key=lambda m: m.request.request_id)
    arrivals = [m.request.arrival_time for m in metrics]
    duration = (max(arrivals) - min(arrivals)) if len(arrivals) >= 2 else 0.0
    return SimulationResult(
        metrics=metrics,
        makespan=max(r.makespan for r in results),
        trace_duration=duration,
        label=label,
    )


__all__ = ["SimulationResult", "summarize_requests", "merge_results"]

"""Simulation results and metric aggregation.

The paper's evaluation reports two families of numbers:

* **SLO attainment** — the percentage of requests whose TTFT / TPOT / E2E latency
  stays under a deadline, swept over SLO scales (Figures 7, 8, 11, 12, 14);
* **throughput** — generated tokens (or requests) per second (Figures 6, 9,
  Tables 5 and 8).

:class:`SimulationResult` wraps the per-request metrics produced by a simulator
run and exposes those aggregates.  The result is backed by one of two storages:

* a list of :class:`~repro.core.types.RequestMetrics` objects (the reference
  engine, windowed serving, and hand-built results), or
* a :class:`MetricArrays` column block (the fast engine's struct-of-arrays
  output), in which case aggregates are computed vectorized and the object list
  is only materialized on first access to :attr:`SimulationResult.metrics` —
  a million-request run aggregates without ever building a million objects.

Both storages describe the same requests, so every aggregate is identical
(bitwise) whichever backing a result carries.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.exceptions import SimulationError
from repro.core.types import (
    OUTCOME_NAMES,
    Request,
    RequestMetrics,
    RequestOutcome,
    SLOSpec,
    SLOType,
)


def summarize_requests(metrics: Sequence[RequestMetrics]) -> Dict[str, float]:
    """Mean latency components over the finished requests of a run."""
    finished = [m for m in metrics if m.finished]
    if not finished:
        return {
            "num_finished": 0.0,
            "mean_ttft": float("nan"),
            "mean_tpot": float("nan"),
            "mean_e2e": float("nan"),
            "mean_queue": float("nan"),
            "mean_prefill": float("nan"),
            "mean_kv_transfer": float("nan"),
            "mean_decode": float("nan"),
        }
    return {
        "num_finished": float(len(finished)),
        "mean_ttft": float(np.mean([m.ttft for m in finished])),
        "mean_tpot": float(np.mean([m.tpot for m in finished])),
        "mean_e2e": float(np.mean([m.e2e_latency for m in finished])),
        "mean_queue": float(np.mean([m.queue_time for m in finished])),
        "mean_prefill": float(np.mean([m.prefill_time for m in finished])),
        "mean_kv_transfer": float(np.mean([m.kv_transfer_time for m in finished])),
        "mean_decode": float(np.mean([m.decode_time for m in finished])),
    }


@dataclass
class MetricArrays:
    """Per-request metrics of one simulation run in struct-of-arrays form.

    One numpy column per :class:`~repro.core.types.RequestMetrics` field (plus
    the request attributes the aggregates need), ordered by request id — the
    fast engine writes these columns directly, so a run never holds per-request
    Python objects.  Derived latencies (TTFT / TPOT / E2E and the component
    breakdown) are computed vectorized with exactly the float64 operations of
    the scalar :class:`~repro.core.types.RequestMetrics` properties, keeping
    array-backed aggregates bitwise-identical to object-backed ones.

    Parameters
    ----------
    request_id, arrival_time, input_length, output_length:
        The request columns (``int64`` / ``float64`` / ``int64`` / ``int64``).
    enqueue_time, prefill_start, first_token_time, kv_transfer_done, \
completion_time:
        Absolute event timestamps per request (``float64``; zero where the
        request never reached the stage).
    finished:
        Completion flags (``bool``).
    prefill_replica, decode_replica:
        Serving-group ids the request was routed to (``int64``).
    outcome:
        Typed terminal disposition per request (``int64``,
        :class:`~repro.core.types.RequestOutcome` values).  Producers
        predating the taxonomy may omit it; it is then derived from
        ``finished`` (finished → ``FINISHED``, else ``PENDING``).
    attempts:
        Number of fault dispositions per request (``int64``; zero when the
        run saw no faults).  Defaults to all-zero when omitted.
    """

    request_id: np.ndarray
    arrival_time: np.ndarray
    input_length: np.ndarray
    output_length: np.ndarray
    enqueue_time: np.ndarray
    prefill_start: np.ndarray
    first_token_time: np.ndarray
    kv_transfer_done: np.ndarray
    completion_time: np.ndarray
    finished: np.ndarray
    prefill_replica: np.ndarray
    decode_replica: np.ndarray
    outcome: Optional[np.ndarray] = None
    attempts: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.outcome is None:
            self.outcome = np.where(
                self.finished, int(RequestOutcome.FINISHED), int(RequestOutcome.PENDING)
            ).astype(np.int64)
        if self.attempts is None:
            self.attempts = np.zeros(self.request_id.size, dtype=np.int64)

    def __len__(self) -> int:
        return self.request_id.size

    def outcome_counts(self) -> Dict[str, int]:
        """Request count per :class:`~repro.core.types.RequestOutcome` name."""
        assert self.outcome is not None
        counts = np.bincount(self.outcome, minlength=len(OUTCOME_NAMES))
        return {name: int(counts[i]) for i, name in enumerate(OUTCOME_NAMES)}

    # ------------------------------------------------------------------ derived
    def ttft(self) -> np.ndarray:
        """Time to first token per request (arrival → first token)."""
        return self.first_token_time - self.arrival_time

    def tpot(self) -> np.ndarray:
        """Time per output token per request (zero for single-token outputs)."""
        extra = self.output_length - 1
        out = np.zeros(len(self), dtype=np.float64)
        multi = extra > 0
        out[multi] = (self.completion_time[multi] - self.first_token_time[multi]) / extra[multi]
        return out

    def e2e_latency(self) -> np.ndarray:
        """End-to-end latency per request (arrival → last token)."""
        return self.completion_time - self.arrival_time

    def value_for(self, slo_type: SLOType) -> np.ndarray:
        """Latency column compared against an SLO of ``slo_type``."""
        if slo_type is SLOType.TTFT:
            return self.ttft()
        if slo_type is SLOType.TPOT:
            return self.tpot()
        return self.e2e_latency()

    # ------------------------------------------------------------------ objects
    def materialize(
        self,
        requests: Optional[Sequence[Request]] = None,
        workload_spans: Optional[Sequence[Tuple[int, str]]] = None,
        row_order: Optional[np.ndarray] = None,
    ) -> List[RequestMetrics]:
        """Build the equivalent :class:`RequestMetrics` list.

        Parameters
        ----------
        requests:
            Backing :class:`Request` objects in column order (e.g. the original
            trace requests); synthesized from the columns when omitted.
        workload_spans:
            ``(first_row, tag)`` pairs describing the workload tag of
            contiguous ingestion-row ranges, used to tag synthesized requests.
        row_order:
            When the columns were reordered from ingestion order (sorted by
            request id), the ingestion row behind each column position — lets
            ``workload_spans`` (which speak ingestion rows) resolve correctly.
        """
        n = len(self)
        ids = self.request_id.tolist()
        arrivals = self.arrival_time.tolist()
        inputs = self.input_length.tolist()
        outputs = self.output_length.tolist()
        if requests is None:
            tags = self._resolve_workloads(n, workload_spans, row_order)
            requests = [
                Request(
                    request_id=ids[i],
                    arrival_time=arrivals[i],
                    input_length=inputs[i],
                    output_length=outputs[i],
                    workload=tags[i],
                )
                for i in range(n)
            ]
        enq = self.enqueue_time.tolist()
        pstart = self.prefill_start.tolist()
        first = self.first_token_time.tolist()
        kvd = self.kv_transfer_done.tolist()
        comp = self.completion_time.tolist()
        fin = self.finished.tolist()
        prep = self.prefill_replica.tolist()
        drep = self.decode_replica.tolist()
        assert self.outcome is not None and self.attempts is not None
        out = self.outcome.tolist()
        att = self.attempts.tolist()
        return [
            RequestMetrics(
                request=requests[i],
                enqueue_time=enq[i],
                prefill_start=pstart[i],
                first_token_time=first[i],
                kv_transfer_done=kvd[i],
                completion_time=comp[i],
                prefill_replica=prep[i],
                decode_replica=drep[i],
                finished=fin[i],
                outcome=RequestOutcome(out[i]),
                attempts=att[i],
            )
            for i in range(n)
        ]

    @staticmethod
    def _resolve_workloads(
        n: int,
        workload_spans: Optional[Sequence[Tuple[int, str]]],
        row_order: Optional[np.ndarray],
    ) -> List[str]:
        if not workload_spans:
            return ["generic"] * n
        starts = [s for s, _ in workload_spans]
        tags = [t for _, t in workload_spans]
        rows = row_order.tolist() if row_order is not None else range(n)
        return [tags[bisect_right(starts, r) - 1] for r in rows]


class SimulationResult:
    """Per-request metrics plus run-level aggregates of one simulation.

    Construct with either ``metrics`` (a :class:`RequestMetrics` list, the
    historical form) or via :meth:`from_arrays` (the fast engine's
    struct-of-arrays form).  :attr:`metrics` is always available — array-backed
    results materialize the object list lazily on first access — and every
    aggregate returns identical values for both backings.
    """

    def __init__(
        self,
        metrics: Optional[List[RequestMetrics]] = None,
        makespan: float = 0.0,
        trace_duration: float = 0.0,
        label: str = "",
        arrays: Optional[MetricArrays] = None,
        requests: Optional[Sequence[Request]] = None,
        workload_spans: Optional[Sequence[Tuple[int, str]]] = None,
        row_order: Optional[np.ndarray] = None,
    ) -> None:
        if metrics is None and arrays is None:
            metrics = []
        self._metrics = metrics
        #: column backing of the run, or ``None`` for list-backed results
        self.arrays = arrays
        self._requests = requests
        self._workload_spans = workload_spans
        self._row_order = row_order
        #: simulation time at which the last event was processed
        self.makespan = makespan
        #: wall-clock duration of the simulated request trace (arrival span)
        self.trace_duration = trace_duration
        #: label of the system / plan that produced the run (for reporting)
        self.label = label

    @classmethod
    def from_arrays(
        cls,
        arrays: MetricArrays,
        makespan: float,
        trace_duration: float,
        label: str = "",
        requests: Optional[Sequence[Request]] = None,
        workload_spans: Optional[Sequence[Tuple[int, str]]] = None,
        row_order: Optional[np.ndarray] = None,
    ) -> "SimulationResult":
        """Wrap a :class:`MetricArrays` block as an array-backed result."""
        return cls(
            metrics=None,
            makespan=makespan,
            trace_duration=trace_duration,
            label=label,
            arrays=arrays,
            requests=requests,
            workload_spans=workload_spans,
            row_order=row_order,
        )

    @property
    def metrics(self) -> List[RequestMetrics]:
        """Per-request metrics, ordered by request id (materialized lazily)."""
        if self._metrics is None:
            assert self.arrays is not None
            self._metrics = self.arrays.materialize(
                requests=self._requests,
                workload_spans=self._workload_spans,
                row_order=self._row_order,
            )
        return self._metrics

    # ------------------------------------------------------------------ basics
    @property
    def num_requests(self) -> int:
        """Number of requests injected."""
        if self.arrays is not None:
            return len(self.arrays)
        return len(self.metrics)

    @property
    def finished(self) -> List[RequestMetrics]:
        """Metrics of requests that completed."""
        return [m for m in self.metrics if m.finished]

    @property
    def num_finished(self) -> int:
        """Number of completed requests."""
        if self.arrays is not None:
            return int(np.count_nonzero(self.arrays.finished))
        return len(self.finished)

    @property
    def completion_rate(self) -> float:
        """Fraction of requests that completed within the simulation horizon."""
        if not self.num_requests:
            return 0.0
        return self.num_finished / self.num_requests

    # ------------------------------------------------------------------ outcomes
    def outcome_counts(self) -> Dict[str, int]:
        """Request count per :class:`~repro.core.types.RequestOutcome` name.

        Works on both backings.  List-backed results resolve the legacy
        ``finished``-only encoding through
        :meth:`~repro.core.types.RequestMetrics.resolved_outcome`; the sum of
        the counts always equals :attr:`num_requests`.
        """
        if self.arrays is not None:
            return self.arrays.outcome_counts()
        counts = {name: 0 for name in OUTCOME_NAMES}
        for m in self.metrics:
            counts[m.resolved_outcome().name.lower()] += 1
        return counts

    def assert_outcome_conservation(self, require_terminal: bool = False) -> Dict[str, int]:
        """Check that every arrival maps to exactly one coherent outcome.

        Raises :class:`~repro.core.exceptions.SimulationError` when the
        ``finished`` flags contradict the outcome taxonomy (a finished request
        must be ``finished`` / ``retried_then_finished`` and vice versa), when
        the outcome counts do not sum to the number of requests, or — with
        ``require_terminal`` — when any request is still ``pending`` (only
        legitimate on horizon-truncated runs).  Returns the outcome counts.
        """
        counts = self.outcome_counts()
        total = sum(counts.values())
        if total != self.num_requests:
            raise SimulationError(
                f"outcome counts sum to {total}, expected {self.num_requests}"
            )
        completed = counts["finished"] + counts["retried_then_finished"]
        if completed != self.num_finished:
            raise SimulationError(
                f"{completed} completed outcomes vs {self.num_finished} finished flags"
            )
        if require_terminal and counts["pending"]:
            raise SimulationError(
                f"{counts['pending']} requests left pending on a fully drained run"
            )
        if self.arrays is not None:
            assert self.arrays.outcome is not None
            completed_mask = (
                self.arrays.outcome == int(RequestOutcome.FINISHED)
            ) | (self.arrays.outcome == int(RequestOutcome.RETRIED_THEN_FINISHED))
            if bool(np.any(completed_mask != self.arrays.finished)):
                raise SimulationError(
                    "per-request outcome/finished flags disagree in the array backing"
                )
        return counts

    # ------------------------------------------------------------------ latency
    def _finished_values(self, slo_type: SLOType) -> Optional[np.ndarray]:
        """Latency column of ``slo_type`` over finished requests (array path)."""
        if self.arrays is None:
            return None
        return self.arrays.value_for(slo_type)[self.arrays.finished]

    def mean(self, slo_type: SLOType) -> float:
        """Mean latency of the given type over finished requests."""
        values = self._finished_values(slo_type)
        if values is not None:
            if not values.size:
                return float("nan")
            return float(np.mean(values))
        finished = self.finished
        if not finished:
            return float("nan")
        return float(np.mean([m.value_for(slo_type) for m in finished]))

    def percentile(self, slo_type: SLOType, q: float) -> float:
        """Latency percentile (``q`` in [0, 100]) of the given type."""
        values = self._finished_values(slo_type)
        if values is not None:
            if not values.size:
                return float("nan")
            return float(np.percentile(values, q))
        finished = self.finished
        if not finished:
            return float("nan")
        return float(np.percentile([m.value_for(slo_type) for m in finished], q))

    def summary(self) -> Dict[str, float]:
        """Mean latency component breakdown (see :func:`summarize_requests`)."""
        if self.arrays is None:
            return summarize_requests(self.metrics)
        a = self.arrays
        fin = a.finished
        count = int(np.count_nonzero(fin))
        if not count:
            return summarize_requests([])
        queue = a.prefill_start[fin] - a.arrival_time[fin]
        prefill = a.first_token_time[fin] - a.prefill_start[fin]
        kv = np.maximum(0.0, a.kv_transfer_done[fin] - a.first_token_time[fin])
        decode = np.maximum(0.0, a.completion_time[fin] - a.kv_transfer_done[fin])
        return {
            "num_finished": float(count),
            "mean_ttft": float(np.mean(a.ttft()[fin])),
            "mean_tpot": float(np.mean(a.tpot()[fin])),
            "mean_e2e": float(np.mean(a.e2e_latency()[fin])),
            "mean_queue": float(np.mean(queue)),
            "mean_prefill": float(np.mean(prefill)),
            "mean_kv_transfer": float(np.mean(kv)),
            "mean_decode": float(np.mean(decode)),
        }

    # ------------------------------------------------------------------ SLO
    def slo_attainment(self, slo: SLOSpec, slo_type: SLOType = SLOType.E2E) -> float:
        """Fraction of *all* requests meeting the SLO (unfinished requests miss)."""
        if self.arrays is not None:
            n = len(self.arrays)
            if not n:
                return 0.0
            values = self.arrays.value_for(slo_type)
            hits = np.count_nonzero(
                self.arrays.finished & (values <= slo.deadline_for(slo_type))
            )
            return int(hits) / n
        if not self.metrics:
            return 0.0
        hits = sum(1 for m in self.metrics if slo.is_met(m, slo_type))
        return hits / len(self.metrics)

    def attainment_curve(
        self,
        slo_scales: Iterable[float],
        reference,
        slo_type: SLOType = SLOType.E2E,
    ) -> List[float]:
        """SLO attainment swept over SLO scales (the Figure 7/8 curves).

        ``reference`` is a :class:`~repro.costmodel.reference.ReferenceLatency`
        providing ``slo_spec(scale)``.
        """
        return [self.slo_attainment(reference.slo_spec(s), slo_type) for s in slo_scales]

    def min_scale_for_attainment(
        self,
        target: float,
        reference,
        slo_type: SLOType = SLOType.E2E,
        scales: Optional[Sequence[float]] = None,
    ) -> float:
        """Smallest SLO scale achieving ``target`` attainment (the "latency deadline").

        The paper reports, for a target attainment goal such as 90 % or 99 %, the
        minimum latency deadline (SLO scale) that reaches it.  Returns ``inf`` when
        even the largest probed scale falls short.
        """
        probe = list(scales) if scales is not None else [x / 4 for x in range(1, 241)]
        for s in sorted(probe):
            if self.slo_attainment(reference.slo_spec(s), slo_type) >= target:
                return float(s)
        return float("inf")

    # ------------------------------------------------------------------ throughput
    @property
    def output_token_throughput(self) -> float:
        """Generated tokens per second over the run (the paper's token throughput)."""
        if self.makespan <= 0 or not self.num_finished:
            return 0.0
        if self.arrays is not None:
            tokens = int(self.arrays.output_length[self.arrays.finished].sum())
        else:
            tokens = sum(m.request.output_length for m in self.finished)
        return tokens / self.makespan

    @property
    def total_token_throughput(self) -> float:
        """Prompt + generated tokens per second over the run."""
        if self.makespan <= 0 or not self.num_finished:
            return 0.0
        if self.arrays is not None:
            fin = self.arrays.finished
            tokens = int(
                self.arrays.input_length[fin].sum() + self.arrays.output_length[fin].sum()
            )
        else:
            tokens = sum(m.request.total_tokens for m in self.finished)
        return tokens / self.makespan

    @property
    def request_throughput(self) -> float:
        """Completed requests per second over the run."""
        if self.makespan <= 0:
            return 0.0
        return self.num_finished / self.makespan


def merge_results(
    results: Sequence[SimulationResult], label: str = "merged"
) -> SimulationResult:
    """Combine sequential window runs of one trace into a single result.

    Event times are absolute within a trace, so the merged makespan is the latest
    clock reached by any window and the merged trace duration spans from the
    first window's start to the last window's end.  Used by the scenario sweep to
    aggregate failure-injection runs served window-by-window.
    """
    if not results:
        return SimulationResult(metrics=[], makespan=0.0, trace_duration=0.0, label=label)
    metrics = [m for r in results for m in r.metrics]
    metrics.sort(key=lambda m: m.request.request_id)
    arrivals = [m.request.arrival_time for m in metrics]
    duration = (max(arrivals) - min(arrivals)) if len(arrivals) >= 2 else 0.0
    return SimulationResult(
        metrics=metrics,
        makespan=max(r.makespan for r in results),
        trace_duration=duration,
        label=label,
    )


__all__ = [
    "MetricArrays",
    "SimulationResult",
    "summarize_requests",
    "merge_results",
]

"""KV-cache management and transport quantization.

* :mod:`repro.kvcache.paged` — a PagedAttention-style block manager that tracks KV
  cache occupancy per sequence; the decode-replica simulator uses it to decide how
  many sequences can be batched.
* :mod:`repro.kvcache.quantization` — group-wise int4/int8 quantization used to
  compress KV caches *for transport only* (values are dequantized before compute,
  exactly as §4 of the paper describes), plus the codec helpers for packing.
"""

from repro.kvcache.paged import PagedKVCache, BlockAllocationError
from repro.kvcache.quantization import (
    QuantizedTensor,
    quantize_groupwise,
    dequantize_groupwise,
    quantize_kv_pair,
    dequantize_kv_pair,
    compression_ratio,
)

__all__ = [
    "PagedKVCache",
    "BlockAllocationError",
    "QuantizedTensor",
    "quantize_groupwise",
    "dequantize_groupwise",
    "quantize_kv_pair",
    "dequantize_kv_pair",
    "compression_ratio",
]

"""Group-wise KV-cache quantization for transport compression.

ThunderServe compresses KV caches before shipping them from prefill to decode
replicas: values are quantized group-wise to 4 bits (following KIVI's asymmetric
min/max scheme), packed, sent over the slow cloud link, then unpacked and
dequantized — compute on both sides always uses the full-precision values.  This
module implements that codec with NumPy and is used both by the quality
experiments (Tables 2, 6, 7) and, through its byte-size accounting, by the
KV-transfer cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class QuantizedTensor:
    """A group-wise quantized tensor plus the metadata needed to reconstruct it.

    Attributes
    ----------
    packed:
        Quantized codes as ``uint8``.  For 4-bit quantization two codes share one
        byte; for 8-bit each code is one byte.
    scales / zeros:
        Per-group dequantization parameters (``float32``): ``x ≈ codes * scale + zero``.
    shape:
        Original tensor shape.
    bits:
        Quantization bit width (4 or 8).
    group_size:
        Number of consecutive elements (along the flattened last axis) sharing one
        scale/zero pair.
    """

    packed: np.ndarray
    scales: np.ndarray
    zeros: np.ndarray
    shape: Tuple[int, ...]
    bits: int
    group_size: int

    @property
    def num_elements(self) -> int:
        """Number of elements of the original tensor."""
        return int(np.prod(self.shape)) if self.shape else 1

    @property
    def payload_bytes(self) -> int:
        """Bytes actually shipped over the wire (codes + scales + zeros)."""
        return int(self.packed.nbytes + self.scales.nbytes + self.zeros.nbytes)


def _validate_bits(bits: int) -> None:
    if bits not in (4, 8):
        raise ValueError(f"bits must be 4 or 8, got {bits}")


def quantize_groupwise(
    tensor: np.ndarray, bits: int = 4, group_size: int = 64
) -> QuantizedTensor:
    """Quantize a tensor with asymmetric per-group min/max quantization.

    The tensor is flattened, padded to a multiple of ``group_size`` and split into
    groups; each group gets its own scale and zero point so outliers in one group
    do not destroy the precision of others (the key idea behind KIVI-style KV
    quantization).
    """
    _validate_bits(bits)
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    arr = np.asarray(tensor, dtype=np.float32)
    flat = arr.reshape(-1)
    n = flat.size
    padded_len = -(-max(n, 1) // group_size) * group_size
    # Pad with the last real value (not zeros) so padding never widens a group's
    # [min, max] range and therefore never degrades the precision of real data.
    fill = flat[-1] if n > 0 else 0.0
    padded = np.full(padded_len, fill, dtype=np.float32)
    padded[:n] = flat
    groups = padded.reshape(-1, group_size)

    g_min = groups.min(axis=1, keepdims=True)
    g_max = groups.max(axis=1, keepdims=True)
    qmax = float(2**bits - 1)
    scale = (g_max - g_min) / qmax
    scale = np.where(scale == 0, 1.0, scale)
    codes = np.clip(np.round((groups - g_min) / scale), 0, qmax).astype(np.uint8)

    codes_flat = codes.reshape(-1)
    if bits == 4:
        if codes_flat.size % 2 == 1:  # pragma: no cover - padded length is even for group_size>=2
            codes_flat = np.concatenate([codes_flat, np.zeros(1, dtype=np.uint8)])
        packed = (codes_flat[0::2] << 4) | codes_flat[1::2]
    else:
        packed = codes_flat

    return QuantizedTensor(
        packed=packed,
        scales=scale.astype(np.float32).reshape(-1),
        zeros=g_min.astype(np.float32).reshape(-1),
        shape=tuple(arr.shape),
        bits=bits,
        group_size=group_size,
    )


def dequantize_groupwise(qt: QuantizedTensor) -> np.ndarray:
    """Reconstruct the (approximate) original tensor from a :class:`QuantizedTensor`."""
    _validate_bits(qt.bits)
    if qt.bits == 4:
        high = (qt.packed >> 4) & 0x0F
        low = qt.packed & 0x0F
        codes = np.empty(qt.packed.size * 2, dtype=np.uint8)
        codes[0::2] = high
        codes[1::2] = low
    else:
        codes = qt.packed
    groups = codes.reshape(-1, qt.group_size).astype(np.float32)
    values = groups * qt.scales[:, None] + qt.zeros[:, None]
    flat = values.reshape(-1)[: qt.num_elements]
    return flat.reshape(qt.shape).astype(np.float32)


def quantize_kv_pair(
    keys: np.ndarray, values: np.ndarray, bits: int = 4, group_size: int = 64
) -> Tuple[QuantizedTensor, QuantizedTensor]:
    """Quantize a (K, V) cache pair for transport."""
    return (
        quantize_groupwise(keys, bits=bits, group_size=group_size),
        quantize_groupwise(values, bits=bits, group_size=group_size),
    )


def dequantize_kv_pair(
    qk: QuantizedTensor, qv: QuantizedTensor
) -> Tuple[np.ndarray, np.ndarray]:
    """Reconstruct a (K, V) cache pair after transport."""
    return dequantize_groupwise(qk), dequantize_groupwise(qv)


def compression_ratio(qt: QuantizedTensor, source_dtype_bytes: int = 2) -> float:
    """Ratio of original bytes to transported bytes (higher is better).

    A 16-bit cache quantized to 4 bits approaches 4x as the group size grows (the
    per-group scales and zeros add a small overhead).
    """
    original = qt.num_elements * source_dtype_bytes
    if qt.payload_bytes == 0:
        return float("inf")
    return original / qt.payload_bytes


def quantization_error(tensor: np.ndarray, bits: int = 4, group_size: int = 64) -> float:
    """Relative L2 reconstruction error of a quantize→dequantize round trip."""
    arr = np.asarray(tensor, dtype=np.float32)
    restored = dequantize_groupwise(quantize_groupwise(arr, bits=bits, group_size=group_size))
    denom = np.linalg.norm(arr.reshape(-1))
    if denom == 0:
        return 0.0
    return float(np.linalg.norm((arr - restored).reshape(-1)) / denom)


__all__ = [
    "QuantizedTensor",
    "quantize_groupwise",
    "dequantize_groupwise",
    "quantize_kv_pair",
    "dequantize_kv_pair",
    "compression_ratio",
    "quantization_error",
]

"""PagedAttention-style KV-cache block manager.

ThunderServe incorporates PagedAttention for memory management: the KV cache is
stored in fixed-size blocks so that sequences of different lengths share device
memory without fragmentation.  The decode-replica simulator uses this manager to
decide whether a newly arrived request can join the running batch and when memory
pressure forces it to wait.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set

from repro.core.exceptions import ReproError


class BlockAllocationError(ReproError):
    """Raised when a sequence requests more KV blocks than are available."""


@dataclass
class _SequenceState:
    """Bookkeeping for one active sequence."""

    num_tokens: int
    num_blocks: int


class PagedKVCache:
    """Block-granular KV-cache capacity tracker.

    Parameters
    ----------
    num_blocks:
        Total number of KV blocks available on the replica (derived from the
        replica's free memory divided by the block byte size).
    block_size:
        Number of tokens per block (16 in vLLM's default configuration).
    """

    def __init__(self, num_blocks: int, block_size: int = 16) -> None:
        if num_blocks < 0:
            raise ValueError("num_blocks must be >= 0")
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self.num_blocks = num_blocks
        self.block_size = block_size
        self._sequences: Dict[int, _SequenceState] = {}
        self._used_blocks = 0

    # ------------------------------------------------------------------ queries
    @property
    def used_blocks(self) -> int:
        """Number of blocks currently allocated."""
        return self._used_blocks

    @property
    def free_blocks(self) -> int:
        """Number of blocks currently free."""
        return self.num_blocks - self._used_blocks

    @property
    def num_sequences(self) -> int:
        """Number of active sequences."""
        return len(self._sequences)

    @property
    def utilization(self) -> float:
        """Fraction of blocks in use (0 when the cache has no blocks)."""
        if self.num_blocks == 0:
            return 0.0
        return self._used_blocks / self.num_blocks

    def tokens_of(self, seq_id: int) -> int:
        """Number of cached tokens for a sequence (0 if unknown)."""
        state = self._sequences.get(seq_id)
        return state.num_tokens if state else 0

    def blocks_needed(self, num_tokens: int) -> int:
        """Blocks required to store ``num_tokens`` tokens."""
        if num_tokens < 0:
            raise ValueError("num_tokens must be >= 0")
        return -(-num_tokens // self.block_size)  # ceil division

    def can_allocate(self, num_tokens: int) -> bool:
        """Whether a new sequence of ``num_tokens`` tokens fits right now."""
        return self.blocks_needed(num_tokens) <= self.free_blocks

    # ------------------------------------------------------------------ mutation
    def allocate(self, seq_id: int, num_tokens: int) -> int:
        """Admit a new sequence with ``num_tokens`` already-cached tokens.

        Returns the number of blocks allocated.  Raises
        :class:`BlockAllocationError` if the sequence is already present or the
        cache lacks capacity.
        """
        if seq_id in self._sequences:
            raise BlockAllocationError(f"sequence {seq_id} is already allocated")
        blocks = self.blocks_needed(num_tokens)
        if blocks > self.free_blocks:
            raise BlockAllocationError(
                f"sequence {seq_id} needs {blocks} blocks but only {self.free_blocks} are free"
            )
        self._sequences[seq_id] = _SequenceState(num_tokens=num_tokens, num_blocks=blocks)
        self._used_blocks += blocks
        return blocks

    def append_token(self, seq_id: int) -> bool:
        """Extend a sequence by one generated token.

        Returns ``True`` if a new block had to be allocated.  Raises
        :class:`BlockAllocationError` when the cache is full and a new block is
        required, or when the sequence is unknown.
        """
        state = self._sequences.get(seq_id)
        if state is None:
            raise BlockAllocationError(f"unknown sequence {seq_id}")
        state.num_tokens += 1
        needed = self.blocks_needed(state.num_tokens)
        if needed > state.num_blocks:
            if self.free_blocks < 1:
                state.num_tokens -= 1
                raise BlockAllocationError("KV cache exhausted while appending a token")
            state.num_blocks += 1
            self._used_blocks += 1
            return True
        return False

    def free(self, seq_id: int) -> int:
        """Release a finished sequence and return the number of freed blocks."""
        state = self._sequences.pop(seq_id, None)
        if state is None:
            raise BlockAllocationError(f"unknown sequence {seq_id}")
        self._used_blocks -= state.num_blocks
        return state.num_blocks

    def reset(self) -> None:
        """Release every sequence."""
        self._sequences.clear()
        self._used_blocks = 0


__all__ = ["PagedKVCache", "BlockAllocationError"]

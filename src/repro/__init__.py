"""repro — a Python reproduction of ThunderServe (MLSys 2025).

ThunderServe is a high-performance and cost-efficient LLM serving system for
heterogeneous cloud environments.  This package reproduces the full system on a
simulated substrate:

* :mod:`repro.hardware` — heterogeneous GPU cluster substrate (GPU specs, nodes,
  instances, network bandwidth matrices, pricing).
* :mod:`repro.model` — transformer architecture configurations and memory / FLOPs
  accounting.
* :mod:`repro.workload` — coding / conversation workload generators (Poisson
  arrivals, synthetic Azure-like length distributions) and the online workload
  profiler.
* :mod:`repro.costmodel` — roofline latency model, alpha-beta network model, KV
  transfer costs and $-per-request accounting.
* :mod:`repro.parallelism` — tensor / pipeline parallel configuration, non-uniform
  pipeline partitioning and DP-based pipeline communication routing.
* :mod:`repro.kvcache` — paged KV cache manager and int4/int8 transport
  quantization codec.
* :mod:`repro.scheduling` — the paper's primary contribution: the two-level
  scheduling algorithm (tabu search over group construction and phase designation,
  parallel configuration deduction, two-stage-transportation orchestration) and the
  lightweight rescheduler.
* :mod:`repro.simulation` — discrete-event serving simulator used both inside the
  scheduler and as the evaluation testbed.
* :mod:`repro.serving` — the ThunderServe runtime facade (coordinator, dispatcher,
  monitor, rescheduling loop).
* :mod:`repro.scenarios` — named workload scenarios (diurnal, bursty, RAG,
  agentic mix, multi-tenant SLO tiers, spot preemption) and the concurrent
  cross-scenario sweep runner.
* :mod:`repro.baselines` — HexGen-like, DistServe-like and vLLM-like baselines.
* :mod:`repro.quality` — tiny NumPy transformer used to evaluate KV transport
  quantization quality.
* :mod:`repro.experiments` — one module per paper table / figure.
"""

from repro.core.types import Phase, Request, RequestMetrics, SLOSpec, SLOType
from repro.hardware.gpu import GPUSpec, GPU_CATALOG
from repro.hardware.cluster import (
    Cluster,
    make_cloud_cluster,
    make_homogeneous_cluster,
    make_inhouse_cluster,
    make_two_datacenter_cluster,
)
from repro.model.architecture import ModelConfig, MODEL_CATALOG, get_model_config
from repro.workload.spec import WorkloadSpec, CODING_WORKLOAD, CONVERSATION_WORKLOAD
from repro.parallelism.config import ParallelConfig, ReplicaPlan

__version__ = "0.1.0"

__all__ = [
    "Phase",
    "Request",
    "RequestMetrics",
    "SLOSpec",
    "SLOType",
    "GPUSpec",
    "GPU_CATALOG",
    "Cluster",
    "make_cloud_cluster",
    "make_homogeneous_cluster",
    "make_inhouse_cluster",
    "make_two_datacenter_cluster",
    "ModelConfig",
    "MODEL_CATALOG",
    "get_model_config",
    "WorkloadSpec",
    "CODING_WORKLOAD",
    "CONVERSATION_WORKLOAD",
    "ParallelConfig",
    "ReplicaPlan",
    "__version__",
]

# The higher-level subsystems (scheduling, simulation, serving, baselines,
# experiments) are imported lazily on attribute access so that importing the
# package root stays cheap; ``from repro.scheduling import ...`` style imports are
# the canonical way to reach them.


def __getattr__(name: str):  # pragma: no cover - thin convenience shim
    if name in {"Scheduler", "SchedulerConfig"}:
        from repro.scheduling.scheduler import Scheduler, SchedulerConfig

        return {"Scheduler": Scheduler, "SchedulerConfig": SchedulerConfig}[name]
    if name in {"DeploymentPlan", "ServingGroup"}:
        from repro.scheduling.deployment import DeploymentPlan, ServingGroup

        return {"DeploymentPlan": DeploymentPlan, "ServingGroup": ServingGroup}[name]
    if name == "ThunderServe":
        from repro.serving.system import ThunderServe

        return ThunderServe
    if name in {"ScenarioSweep", "Scenario"}:
        from repro.scenarios import Scenario, ScenarioSweep

        return {"ScenarioSweep": ScenarioSweep, "Scenario": Scenario}[name]
    raise AttributeError(f"module 'repro' has no attribute {name!r}")

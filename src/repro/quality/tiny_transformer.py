"""A small deterministic NumPy decoder-only transformer with an explicit KV cache.

The transformer exists to exercise the KV-cache transport path end-to-end: run the
prefill phase, quantize the resulting KV cache with the same codec the serving
system uses for cross-replica transfers, dequantize it, and continue decoding —
then compare outputs against the exact (un-quantized) run.  Weights are random but
fixed by a seed, which is sufficient because transport quantization error is a
property of the numerics, not of trained weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.rng import ensure_rng
from repro.kvcache.quantization import dequantize_groupwise, quantize_groupwise


@dataclass(frozen=True)
class TinyTransformerConfig:
    """Shape of the tiny transformer."""

    vocab_size: int = 128
    d_model: int = 64
    num_heads: int = 4
    num_layers: int = 4
    d_ff: int = 128
    max_seq_len: int = 512
    seed: int = 0

    def __post_init__(self) -> None:
        if self.d_model % self.num_heads != 0:
            raise ValueError("d_model must be divisible by num_heads")
        for name in ("vocab_size", "d_model", "num_heads", "num_layers", "d_ff", "max_seq_len"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")

    @property
    def head_dim(self) -> int:
        """Per-head dimension."""
        return self.d_model // self.num_heads


#: KV cache type: one (K, V) pair per layer, each of shape (seq, d_model).
KVCache = List[Tuple[np.ndarray, np.ndarray]]


def _softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    x = x - x.max(axis=axis, keepdims=True)
    e = np.exp(x)
    return e / e.sum(axis=axis, keepdims=True)


def _layer_norm(x: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return (x - mean) / np.sqrt(var + eps)


class TinyTransformer:
    """Decoder-only transformer with explicit prefill / decode phases."""

    def __init__(self, config: TinyTransformerConfig = TinyTransformerConfig()) -> None:
        self.config = config
        rng = ensure_rng(config.seed)
        c = config
        scale = 1.0 / np.sqrt(c.d_model)

        def mat(*shape: int) -> np.ndarray:
            return (rng.standard_normal(shape) * scale).astype(np.float32)

        self.embedding = mat(c.vocab_size, c.d_model)
        self.pos_embedding = mat(c.max_seq_len, c.d_model)
        self.layers = []
        for _ in range(c.num_layers):
            self.layers.append(
                {
                    "wq": mat(c.d_model, c.d_model),
                    "wk": mat(c.d_model, c.d_model),
                    "wv": mat(c.d_model, c.d_model),
                    "wo": mat(c.d_model, c.d_model),
                    "w1": mat(c.d_model, c.d_ff),
                    "w2": mat(c.d_ff, c.d_model),
                }
            )
        # The LM head is scaled up so the logit distribution is peaked, mirroring
        # the low-entropy next-token distributions of trained LLMs; with
        # near-uniform logits the greedy argmax would flip on numerical noise far
        # smaller than anything a trained model would care about.
        self.lm_head = mat(c.d_model, c.vocab_size) * 4.0

    # ------------------------------------------------------------------ forward
    def _attention(
        self,
        layer: dict,
        x: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        causal_offset: int,
    ) -> np.ndarray:
        """Multi-head attention of query positions ``x`` over cached keys/values."""
        c = self.config
        q = x @ layer["wq"]
        seq_q, seq_k = q.shape[0], keys.shape[0]
        q = q.reshape(seq_q, c.num_heads, c.head_dim).transpose(1, 0, 2)
        k = keys.reshape(seq_k, c.num_heads, c.head_dim).transpose(1, 0, 2)
        v = values.reshape(seq_k, c.num_heads, c.head_dim).transpose(1, 0, 2)
        scores = q @ k.transpose(0, 2, 1) / np.sqrt(c.head_dim)
        # Causal mask: query position i (absolute index causal_offset + i) may only
        # attend to key positions <= its absolute index.
        q_pos = np.arange(seq_q)[:, None] + causal_offset
        k_pos = np.arange(seq_k)[None, :]
        mask = k_pos > q_pos
        scores = np.where(mask[None, :, :], -1e9, scores)
        attn = _softmax(scores, axis=-1)
        out = (attn @ v).transpose(1, 0, 2).reshape(seq_q, c.d_model)
        return out @ layer["wo"]

    def _block(self, layer: dict, x: np.ndarray, keys: np.ndarray, values: np.ndarray, offset: int) -> np.ndarray:
        attn_out = self._attention(layer, _layer_norm(x), keys, values, offset)
        x = x + attn_out
        h = _layer_norm(x) @ layer["w1"]
        h = np.maximum(h, 0.0)
        return x + h @ layer["w2"]

    def prefill(self, tokens: np.ndarray) -> Tuple[np.ndarray, KVCache]:
        """Process a prompt; return logits of the last position and the KV cache."""
        tokens = np.asarray(tokens, dtype=int)
        if tokens.ndim != 1 or tokens.size == 0:
            raise ValueError("tokens must be a non-empty 1-D array")
        if tokens.size > self.config.max_seq_len:
            raise ValueError("prompt exceeds max_seq_len")
        x = self.embedding[tokens] + self.pos_embedding[: tokens.size]
        cache: KVCache = []
        for layer in self.layers:
            normed = _layer_norm(x)
            keys = normed @ layer["wk"]
            values = normed @ layer["wv"]
            cache.append((keys.astype(np.float32), values.astype(np.float32)))
            x = self._block(layer, x, keys, values, offset=0)
        logits = _layer_norm(x[-1:]) @ self.lm_head
        return logits[0], cache

    def decode_step(self, token: int, position: int, cache: KVCache) -> Tuple[np.ndarray, KVCache]:
        """Generate logits for the next position given one new token and the cache."""
        if position >= self.config.max_seq_len:
            raise ValueError("position exceeds max_seq_len")
        x = (self.embedding[int(token)] + self.pos_embedding[position])[None, :]
        new_cache: KVCache = []
        for layer, (keys, values) in zip(self.layers, cache):
            normed = _layer_norm(x)
            new_k = normed @ layer["wk"]
            new_v = normed @ layer["wv"]
            keys = np.concatenate([keys, new_k], axis=0)
            values = np.concatenate([values, new_v], axis=0)
            new_cache.append((keys, values))
            x = self._block(layer, x, keys, values, offset=position)
        logits = _layer_norm(x[-1:]) @ self.lm_head
        return logits[0], new_cache

    # ------------------------------------------------------------------ generation
    @staticmethod
    def transport_cache(cache: KVCache, bits: Optional[int], group_size: int = 32) -> KVCache:
        """Round-trip a KV cache through the transport codec (``bits=None`` = exact)."""
        if bits is None or bits >= 16:
            return [(k.copy(), v.copy()) for k, v in cache]
        out: KVCache = []
        for keys, values in cache:
            qk = quantize_groupwise(keys, bits=bits, group_size=group_size)
            qv = quantize_groupwise(values, bits=bits, group_size=group_size)
            out.append((dequantize_groupwise(qk), dequantize_groupwise(qv)))
        return out

    def generate(
        self,
        prompt: np.ndarray,
        num_tokens: int,
        kv_transport_bits: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Greedy-decode ``num_tokens`` tokens after the prompt.

        ``kv_transport_bits`` simulates the prefill→decode hand-off: the prompt's
        KV cache is round-tripped through the transport codec before decoding
        starts (exactly once — subsequent decode steps use full precision, as in
        ThunderServe).  Returns ``(generated token ids, last-step logits)``.
        """
        if num_tokens < 1:
            raise ValueError("num_tokens must be >= 1")
        prompt = np.asarray(prompt, dtype=int)
        logits, cache = self.prefill(prompt)
        cache = self.transport_cache(cache, kv_transport_bits)
        generated = []
        position = prompt.size
        token = int(np.argmax(logits))
        generated.append(token)
        for _ in range(num_tokens - 1):
            logits, cache = self.decode_step(token, position, cache)
            token = int(np.argmax(logits))
            generated.append(token)
            position += 1
        return np.asarray(generated, dtype=int), logits

    def teacher_forced_predictions(
        self,
        prompt: np.ndarray,
        continuation: np.ndarray,
        kv_transport_bits: Optional[int] = None,
    ) -> np.ndarray:
        """Greedy predictions at every continuation position under teacher forcing.

        ``predictions[i]`` is the model's argmax choice given the prompt plus
        ``continuation[:i]`` as context.  Comparing these against the exact run's
        own choices measures per-step decision robustness without the cascading
        divergence of free-running generation — the analogue of task accuracy in
        Table 2.
        """
        prompt = np.asarray(prompt, dtype=int)
        continuation = np.asarray(continuation, dtype=int)
        logits, cache = self.prefill(prompt)
        cache = self.transport_cache(cache, kv_transport_bits)
        predictions = [int(np.argmax(logits))]
        position = prompt.size
        for token in continuation[:-1]:
            logits, cache = self.decode_step(int(token), position, cache)
            predictions.append(int(np.argmax(logits)))
            position += 1
        return np.asarray(predictions[: continuation.size], dtype=int)

    def sequence_logprobs(
        self,
        prompt: np.ndarray,
        continuation: np.ndarray,
        kv_transport_bits: Optional[int] = None,
    ) -> np.ndarray:
        """Log-probabilities the model assigns to a fixed continuation.

        Used for the pseudo-perplexity comparison between exact and
        transport-quantized KV caches.
        """
        prompt = np.asarray(prompt, dtype=int)
        continuation = np.asarray(continuation, dtype=int)
        logits, cache = self.prefill(prompt)
        cache = self.transport_cache(cache, kv_transport_bits)
        logprobs = []
        position = prompt.size
        prev_token = None
        for target in continuation:
            if prev_token is not None:
                logits, cache = self.decode_step(prev_token, position, cache)
                position += 1
            # Numerically stable log-softmax.
            shifted = logits - logits.max()
            log_softmax = shifted - np.log(np.exp(shifted).sum())
            logprobs.append(float(log_softmax[int(target)]))
            prev_token = int(target)
        return np.asarray(logprobs)


__all__ = ["TinyTransformer", "TinyTransformerConfig", "KVCache"]

"""Quality metrics for the KV-transport quantization experiments.

These metrics mirror the paper's Tables 2, 6 and 7:

* task-accuracy drop → next-token agreement between exact and quantized runs;
* perplexity ratio → pseudo-perplexity of a fixed continuation under both runs;
* ROUGE-1/2/L → n-gram overlap between the exact run's greedy output (treated as
  the ground truth, exactly as the paper does) and the quantized run's output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.rng import RNGLike, ensure_rng
from repro.quality.tiny_transformer import TinyTransformer, TinyTransformerConfig


# --------------------------------------------------------------------------- text metrics
def rouge_n(reference: Sequence[int], candidate: Sequence[int], n: int = 1) -> float:
    """ROUGE-N recall between two token sequences (1.0 = identical n-gram multiset)."""
    ref = list(reference)
    cand = list(candidate)
    if len(ref) < n:
        return 1.0 if len(cand) < n else 0.0
    def ngrams(seq: Sequence[int]) -> Dict[tuple, int]:
        counts: Dict[tuple, int] = {}
        for i in range(len(seq) - n + 1):
            gram = tuple(seq[i : i + n])
            counts[gram] = counts.get(gram, 0) + 1
        return counts
    ref_counts = ngrams(ref)
    cand_counts = ngrams(cand)
    overlap = sum(min(c, cand_counts.get(g, 0)) for g, c in ref_counts.items())
    total = sum(ref_counts.values())
    return overlap / total if total else 1.0


def _lcs_length(a: Sequence[int], b: Sequence[int]) -> int:
    """Length of the longest common subsequence (dynamic programming)."""
    la, lb = len(a), len(b)
    if la == 0 or lb == 0:
        return 0
    dp = np.zeros((la + 1, lb + 1), dtype=int)
    for i in range(1, la + 1):
        for j in range(1, lb + 1):
            if a[i - 1] == b[j - 1]:
                dp[i, j] = dp[i - 1, j - 1] + 1
            else:
                dp[i, j] = max(dp[i - 1, j], dp[i, j - 1])
    return int(dp[la, lb])


def rouge_l(reference: Sequence[int], candidate: Sequence[int]) -> float:
    """ROUGE-L F1 between two token sequences."""
    ref = list(reference)
    cand = list(candidate)
    if not ref and not cand:
        return 1.0
    if not ref or not cand:
        return 0.0
    lcs = _lcs_length(ref, cand)
    precision = lcs / len(cand)
    recall = lcs / len(ref)
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def next_token_agreement(reference: Sequence[int], candidate: Sequence[int]) -> float:
    """Fraction of positions where the two greedy decodes emit the same token."""
    ref = list(reference)
    cand = list(candidate)
    if not ref:
        return 1.0
    length = min(len(ref), len(cand))
    if length == 0:
        return 0.0
    matches = sum(1 for i in range(length) if ref[i] == cand[i])
    return matches / len(ref)


def pseudo_perplexity(logprobs: np.ndarray) -> float:
    """Perplexity implied by per-token log-probabilities."""
    lp = np.asarray(logprobs, dtype=float)
    if lp.size == 0:
        return float("nan")
    return float(np.exp(-lp.mean()))


# --------------------------------------------------------------------------- evaluation
@dataclass(frozen=True)
class KVQualityReport:
    """Aggregate quality comparison of exact vs transport-quantized KV caches."""

    bits: int
    num_prompts: int
    #: mean fraction of greedy tokens that match the 16-bit run
    token_agreement: float
    #: mean ROUGE scores of the quantized output against the 16-bit output
    rouge1: float
    rouge2: float
    rougeL: float
    #: pseudo-perplexity of a fixed continuation under the 16-bit run
    ppl_exact: float
    #: pseudo-perplexity of the same continuation under the quantized run
    ppl_quantized: float

    @property
    def accuracy_drop(self) -> float:
        """1 - token agreement (the "accuracy drop" analogue of Table 2)."""
        return 1.0 - self.token_agreement

    @property
    def ppl_ratio(self) -> float:
        """Quantized / exact pseudo-perplexity (≈ 1 when transport is lossless enough)."""
        if self.ppl_exact == 0:
            return float("nan")
        return self.ppl_quantized / self.ppl_exact


def evaluate_kv_transport_quality(
    bits: int = 4,
    num_prompts: int = 8,
    prompt_length: int = 64,
    generate_tokens: int = 32,
    model: Optional[TinyTransformer] = None,
    seed: RNGLike = 0,
) -> KVQualityReport:
    """Compare exact vs transport-quantized KV caches on random prompts.

    The 16-bit run's greedy output is treated as ground truth (the paper's Table 7
    does the same), the quantized run is the candidate.
    """
    rng = ensure_rng(seed)
    model = model or TinyTransformer(TinyTransformerConfig(seed=7))
    vocab = model.config.vocab_size

    agreements: List[float] = []
    r1s: List[float] = []
    r2s: List[float] = []
    rls: List[float] = []
    ppl_exact: List[float] = []
    ppl_quant: List[float] = []
    for _ in range(num_prompts):
        prompt = rng.integers(0, vocab, size=prompt_length)
        exact_out, _ = model.generate(prompt, generate_tokens, kv_transport_bits=None)
        quant_out, _ = model.generate(prompt, generate_tokens, kv_transport_bits=bits)
        # Accuracy analogue: per-step decisions under teacher forcing along the
        # exact run's output (free-running outputs diverge chaotically after a
        # single flip, which would overstate the impact of transport noise).
        quant_teacher = model.teacher_forced_predictions(prompt, exact_out, kv_transport_bits=bits)
        agreements.append(next_token_agreement(exact_out, quant_teacher))
        r1s.append(rouge_n(exact_out, quant_out, 1))
        r2s.append(rouge_n(exact_out, quant_out, 2))
        rls.append(rouge_l(exact_out, quant_out))
        continuation = rng.integers(0, vocab, size=generate_tokens)
        ppl_exact.append(pseudo_perplexity(model.sequence_logprobs(prompt, continuation, None)))
        ppl_quant.append(pseudo_perplexity(model.sequence_logprobs(prompt, continuation, bits)))

    return KVQualityReport(
        bits=bits,
        num_prompts=num_prompts,
        token_agreement=float(np.mean(agreements)),
        rouge1=float(np.mean(r1s)),
        rouge2=float(np.mean(r2s)),
        rougeL=float(np.mean(rls)),
        ppl_exact=float(np.mean(ppl_exact)),
        ppl_quantized=float(np.mean(ppl_quant)),
    )


__all__ = [
    "rouge_n",
    "rouge_l",
    "next_token_agreement",
    "pseudo_perplexity",
    "KVQualityReport",
    "evaluate_kv_transport_quality",
]

"""Model-quality evaluation of KV-cache transport quantization.

The paper validates that one-shot 4-bit KV compression (quantize → ship →
dequantize, compute always in 16-bit) leaves model quality essentially untouched
(Tables 2, 6 and 7: accuracy drop < 2 %, PPL within 1 %, ROUGE ≈ 0.95).  We cannot
run LLaMA checkpoints in this environment, so the substitution is a small
deterministic NumPy transformer executed end-to-end with exact vs
transport-quantized KV caches; the mechanism under test (group-wise int4 KV
round-trip before decode) is identical.
"""

from repro.quality.tiny_transformer import TinyTransformer, TinyTransformerConfig
from repro.quality.metrics import (
    KVQualityReport,
    evaluate_kv_transport_quality,
    next_token_agreement,
    pseudo_perplexity,
    rouge_n,
    rouge_l,
)

__all__ = [
    "TinyTransformer",
    "TinyTransformerConfig",
    "KVQualityReport",
    "evaluate_kv_transport_quality",
    "next_token_agreement",
    "pseudo_perplexity",
    "rouge_n",
    "rouge_l",
]

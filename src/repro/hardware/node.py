"""Nodes (cloud instances) grouping GPUs.

A node corresponds to one rented cloud instance (e.g. a ``4xA5000`` Vast.ai
instance) or one in-house server.  GPUs within a node communicate over the node's
intra-node interconnect (PCIe on the cloud, NVLink in-house); GPUs on different
nodes communicate over Ethernet (cloud) or InfiniBand (in-house).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.exceptions import ConfigurationError
from repro.hardware.gpu import GPU, GPUSpec, get_gpu_spec


@dataclass
class Node:
    """One multi-GPU machine.

    Attributes
    ----------
    node_id:
        Index of the node within the cluster.
    gpu_type:
        GPU type name for all GPUs on this node (cloud instances are homogeneous
        within a node).
    num_gpus:
        Number of GPUs on the node.
    intra_bandwidth_gbps:
        Intra-node GPU-to-GPU bandwidth in GB/s (PCIe ~ 16-32 GB/s, NVLink ~ 200+).
    intra_latency_s:
        Intra-node link latency in seconds.
    datacenter:
        Data-center identifier; inter-node bandwidth is much lower across data
        centers (Appendix H, Figure 16).
    """

    node_id: int
    gpu_type: str
    num_gpus: int
    intra_bandwidth_gbps: float = 24.0
    intra_latency_s: float = 5e-6
    datacenter: int = 0

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ConfigurationError(f"node {self.node_id}: num_gpus must be >= 1")
        if self.intra_bandwidth_gbps <= 0:
            raise ConfigurationError(f"node {self.node_id}: intra_bandwidth_gbps must be positive")
        # Validate the GPU type eagerly so misconfigured clusters fail fast.
        self.spec: GPUSpec = get_gpu_spec(self.gpu_type)

    def build_gpus(self, first_gpu_id: int) -> List[GPU]:
        """Materialise the node's GPUs with global ids starting at ``first_gpu_id``."""
        return [
            GPU(gpu_id=first_gpu_id + i, spec=self.spec, node_id=self.node_id, datacenter=self.datacenter)
            for i in range(self.num_gpus)
        ]

    @property
    def price_per_hour(self) -> float:
        """Total rental price of the node in USD/hour."""
        return self.spec.price_per_hour * self.num_gpus

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Node(id={self.node_id}, {self.num_gpus}x{self.gpu_type}, "
            f"dc={self.datacenter}, intra={self.intra_bandwidth_gbps}GB/s)"
        )


__all__ = ["Node"]

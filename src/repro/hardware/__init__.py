"""Heterogeneous GPU cluster substrate.

This subpackage replaces the physical clusters used by the paper (rented Vast.ai
instances and an in-house 8xA100 server) with an explicit, fully-specified model:

* :mod:`repro.hardware.gpu` — per-GPU specifications (Table 1 of the paper).
* :mod:`repro.hardware.node` — nodes / cloud instances grouping GPUs.
* :mod:`repro.hardware.network` — pairwise alpha-beta network model (latency +
  bandwidth matrices) for cloud and in-house topologies (Figure 13).
* :mod:`repro.hardware.cluster` — the :class:`Cluster` aggregate plus factory
  functions for the exact hardware environments of §5.1.
* :mod:`repro.hardware.pricing` — rental-price accounting used by the
  cost-efficiency comparisons.
"""

from repro.hardware.gpu import GPU, GPUSpec, GPU_CATALOG, get_gpu_spec
from repro.hardware.node import Node
from repro.hardware.network import NetworkModel, LinkClass
from repro.hardware.cluster import (
    Cluster,
    make_cloud_cluster,
    make_inhouse_cluster,
    make_homogeneous_cluster,
    make_two_datacenter_cluster,
)
from repro.hardware.pricing import cluster_price_per_hour, price_per_request_phase

__all__ = [
    "GPU",
    "GPUSpec",
    "GPU_CATALOG",
    "get_gpu_spec",
    "Node",
    "NetworkModel",
    "LinkClass",
    "Cluster",
    "make_cloud_cluster",
    "make_inhouse_cluster",
    "make_homogeneous_cluster",
    "make_two_datacenter_cluster",
    "cluster_price_per_hour",
    "price_per_request_phase",
]

"""The :class:`Cluster` aggregate and factory functions for the paper's testbeds.

A cluster bundles a list of nodes, the flattened GPU list and the pairwise network
model.  Factory functions reconstruct the exact hardware environments of §5.1:

* :func:`make_cloud_cluster` — the 32-GPU heterogeneous cloud environment: two
  4xA6000 instances, two 4xA5000 instances, one 8xA40 instance and two 4x3090Ti
  instances (total price ≈ $13.5/hour).
* :func:`make_inhouse_cluster` — the homogeneous in-house 8xA100 server
  (≈ $14.0/hour at the Table 1 rental price), with NVLink intra-node bandwidth.
* :func:`make_homogeneous_cluster` — arbitrary homogeneous clusters, used by the
  prefill:decode-ratio experiments (Figures 6 and 14: 8/12/16 A5000 GPUs).
* :func:`make_two_datacenter_cluster` — the 4xA40 + 4x3090Ti cross-datacenter case
  study of Appendix H (Figure 16).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.core.rng import RNGLike, ensure_rng
from repro.hardware.gpu import GPU, GPUSpec, get_gpu_spec
from repro.hardware.network import NetworkConfig, NetworkModel
from repro.hardware.node import Node


@dataclass
class Cluster:
    """A collection of GPU nodes plus their interconnect model.

    GPU ids are global and stable: removing GPUs (e.g. to model a node failure)
    produces a new :class:`Cluster` that keeps the original ids and network
    matrices but exposes a smaller ``gpus`` list.  The full roster of GPUs the
    cluster has ever known is retained in ``all_gpus`` so that removed GPUs can
    later be revived by id (:meth:`with_gpus` — capacity recovery after a spot
    preemption ends or a crashed node rejoins).
    """

    nodes: List[Node]
    gpus: List[GPU]
    network: NetworkModel
    name: str = "cluster"
    #: full GPU roster, including currently-removed GPUs; defaults to ``gpus``
    all_gpus: Optional[List[GPU]] = None

    def __post_init__(self) -> None:
        if not self.gpus:
            raise ConfigurationError("a cluster must contain at least one GPU")
        ids = [g.gpu_id for g in self.gpus]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("duplicate GPU ids in cluster")
        if max(ids) >= self.network.num_gpus:
            raise ConfigurationError("GPU id exceeds the size of the network matrices")
        self._gpu_by_id: Dict[int, GPU] = {g.gpu_id: g for g in self.gpus}
        if self.all_gpus is None:
            self.all_gpus = list(self.gpus)
        roster_ids = [g.gpu_id for g in self.all_gpus]
        if len(set(roster_ids)) != len(roster_ids):
            raise ConfigurationError("duplicate GPU ids in cluster roster")
        self._roster_by_id: Dict[int, GPU] = {g.gpu_id: g for g in self.all_gpus}
        missing = set(self._gpu_by_id) - set(self._roster_by_id)
        if missing:
            raise ConfigurationError(
                f"available GPUs {sorted(missing)} are absent from the cluster roster"
            )
        if max(roster_ids) >= self.network.num_gpus:
            raise ConfigurationError("roster GPU id exceeds the size of the network matrices")

    # ------------------------------------------------------------------ accessors
    @property
    def num_gpus(self) -> int:
        """Number of (available) GPUs in the cluster."""
        return len(self.gpus)

    @property
    def gpu_ids(self) -> List[int]:
        """Sorted list of available GPU ids."""
        return sorted(self._gpu_by_id)

    @property
    def removed_gpu_ids(self) -> List[int]:
        """Sorted ids of roster GPUs that are currently removed (revivable)."""
        return sorted(set(self._roster_by_id) - set(self._gpu_by_id))

    def gpu(self, gpu_id: int) -> GPU:
        """Look up a GPU by id."""
        try:
            return self._gpu_by_id[gpu_id]
        except KeyError:
            raise KeyError(f"GPU id {gpu_id} not in cluster {self.name!r}") from None

    def gpus_of_type(self, type_name: str) -> List[GPU]:
        """All available GPUs of a given type."""
        return [g for g in self.gpus if g.type_name == type_name]

    def type_counts(self) -> Dict[str, int]:
        """Number of available GPUs per type (the ``G_t`` of §3.1)."""
        counts: Dict[str, int] = {}
        for g in self.gpus:
            counts[g.type_name] = counts.get(g.type_name, 0) + 1
        return counts

    @property
    def gpu_types(self) -> List[str]:
        """Sorted list of distinct GPU type names present."""
        return sorted(self.type_counts())

    @property
    def price_per_hour(self) -> float:
        """Total rental price of the available GPUs in USD/hour."""
        return sum(g.spec.price_per_hour for g in self.gpus)

    def node_of(self, gpu_id: int) -> int:
        """Node id hosting ``gpu_id``."""
        return self.gpu(gpu_id).node_id

    def gpus_on_node(self, node_id: int) -> List[GPU]:
        """All available GPUs on a given node."""
        return [g for g in self.gpus if g.node_id == node_id]

    # ------------------------------------------------------------------ mutation
    def without_gpus(self, gpu_ids: Iterable[int], name: Optional[str] = None) -> "Cluster":
        """Return a new cluster with ``gpu_ids`` removed (models failures/preemption).

        Global GPU ids and network matrices are preserved so that deployment plans
        built against the original cluster remain addressable.
        """
        removed = set(gpu_ids)
        unknown = removed - set(self._gpu_by_id)
        if unknown:
            raise KeyError(f"cannot remove unknown GPU ids {sorted(unknown)}")
        remaining = [g for g in self.gpus if g.gpu_id not in removed]
        if not remaining:
            raise ConfigurationError("removing these GPUs would empty the cluster")
        return Cluster(
            nodes=self.nodes,
            gpus=remaining,
            network=self.network,
            name=name or f"{self.name}-minus-{len(removed)}gpus",
            all_gpus=self.all_gpus,
        )

    def with_gpus(self, gpu_ids: Iterable[int], name: Optional[str] = None) -> "Cluster":
        """Return a new cluster with previously removed ``gpu_ids`` revived.

        The inverse of :meth:`without_gpus`: GPUs are restored from the roster
        by their global id (capacity recovery — a spot preemption ending, a
        crashed node rejoining).  Ids must exist in the roster (``KeyError``
        otherwise) and must currently be removed (:class:`ConfigurationError`
        when asked to revive an already-alive GPU).
        """
        revived = set(gpu_ids)
        unknown = revived - set(self._roster_by_id)
        if unknown:
            raise KeyError(f"cannot revive GPU ids {sorted(unknown)}: not in the cluster roster")
        already = revived & set(self._gpu_by_id)
        if already:
            raise ConfigurationError(
                f"cannot revive GPU ids {sorted(already)}: already available"
            )
        alive = set(self._gpu_by_id) | revived
        restored = [g for g in self.all_gpus if g.gpu_id in alive]
        return Cluster(
            nodes=self.nodes,
            gpus=restored,
            network=self.network,
            name=name or f"{self.name}-plus-{len(revived)}gpus",
            all_gpus=self.all_gpus,
        )

    def with_network(self, network: NetworkModel, name: Optional[str] = None) -> "Cluster":
        """Return a copy of this cluster with its interconnect model replaced.

        Used to model network-link degradation and repair: the replacement
        matrices (typically :meth:`~repro.hardware.network.NetworkModel.scaled`
        applied to the pristine model) must cover every roster GPU id.
        """
        if network.num_gpus < self.network.num_gpus:
            raise ConfigurationError(
                "replacement network matrices are smaller than the cluster's roster"
            )
        return Cluster(
            nodes=self.nodes,
            gpus=list(self.gpus),
            network=network,
            name=name or self.name,
            all_gpus=self.all_gpus,
        )

    def restricted_to(self, gpu_ids: Iterable[int], name: Optional[str] = None) -> "Cluster":
        """Return a new cluster containing only ``gpu_ids`` (keeps global ids)."""
        keep = set(gpu_ids)
        unknown = keep - set(self._gpu_by_id)
        if unknown:
            raise KeyError(f"unknown GPU ids {sorted(unknown)}")
        selected = [g for g in self.gpus if g.gpu_id in keep]
        if not selected:
            raise ConfigurationError("restriction would produce an empty cluster")
        return Cluster(
            nodes=self.nodes,
            gpus=selected,
            network=self.network,
            name=name or f"{self.name}-subset",
            all_gpus=self.all_gpus,
        )

    def describe(self) -> str:
        """Human-readable one-line summary, e.g. ``8xA40 + 8xA6000 + ...``."""
        counts = self.type_counts()
        parts = [f"{n}x{t}" for t, n in sorted(counts.items())]
        return " + ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Cluster({self.name!r}, {self.describe()}, ${self.price_per_hour:.3f}/hr)"


# --------------------------------------------------------------------------- helpers
def _build_cluster(
    node_specs: Sequence[tuple[str, int, float, int]],
    *,
    name: str,
    network_config: Optional[NetworkConfig] = None,
    seed: RNGLike = 0,
    jitter_intra: bool = False,
) -> Cluster:
    """Build a cluster from ``(gpu_type, num_gpus, intra_bw_gbps, datacenter)`` tuples."""
    rng = ensure_rng(seed)
    nodes: List[Node] = []
    for node_id, (gpu_type, num_gpus, intra_bw, datacenter) in enumerate(node_specs):
        bw = intra_bw
        if jitter_intra:
            bw = float(intra_bw * rng.uniform(0.85, 1.15))
        nodes.append(
            Node(
                node_id=node_id,
                gpu_type=gpu_type,
                num_gpus=num_gpus,
                intra_bandwidth_gbps=bw,
                datacenter=datacenter,
            )
        )
    gpus: List[GPU] = []
    for node in nodes:
        gpus.extend(node.build_gpus(first_gpu_id=len(gpus)))
    network = NetworkModel.from_nodes(nodes, config=network_config, seed=rng)
    return Cluster(nodes=nodes, gpus=gpus, network=network, name=name)


# --------------------------------------------------------------------------- factories
def make_cloud_cluster(seed: RNGLike = 0) -> Cluster:
    """The 32-GPU heterogeneous cloud environment of §5.1.

    Two 4xA6000 instances, two 4xA5000 instances, one 8xA40 instance and two
    4x3090Ti instances, connected by PCIe within nodes and heterogeneous Ethernet
    between nodes.  The total rental price is ≈ $13.5/hour, matching the paper's
    budget.
    """
    node_specs = [
        ("A6000", 4, 24.0, 0),
        ("A6000", 4, 24.0, 0),
        ("A5000", 4, 20.0, 0),
        ("A5000", 4, 20.0, 0),
        ("A40", 8, 28.0, 0),
        ("3090Ti", 4, 22.0, 0),
        ("3090Ti", 4, 22.0, 0),
    ]
    return _build_cluster(node_specs, name="cloud-32gpu", seed=seed, jitter_intra=True)


def make_inhouse_cluster(num_gpus: int = 8, seed: RNGLike = 0) -> Cluster:
    """The homogeneous in-house server: one node of ``num_gpus`` A100-80GB GPUs.

    Intra-node links model NVLink (~250 GB/s); there is a single node so the
    bandwidth matrix is uniformly fast, matching the right heatmap of Figure 13.
    """
    if num_gpus < 1:
        raise ConfigurationError("num_gpus must be >= 1")
    node_specs = [("A100", num_gpus, 250.0, 0)]
    config = NetworkConfig(
        intra_node_min_gbps=250.0,
        intra_node_max_gbps=250.0,
    )
    return _build_cluster(node_specs, name=f"inhouse-{num_gpus}xA100", network_config=config, seed=seed)


def make_homogeneous_cluster(
    gpu_type: str,
    num_gpus: int,
    gpus_per_node: int = 4,
    intra_bandwidth_gbps: float = 20.0,
    seed: RNGLike = 0,
    name: Optional[str] = None,
) -> Cluster:
    """A homogeneous multi-node cluster of ``num_gpus`` GPUs of one type.

    Used by the prefill:decode ratio experiments (Figures 6 and 14), which run
    LLaMA-13B on 8, 12 and 16 A5000 GPUs with two GPUs per replica.
    """
    get_gpu_spec(gpu_type)  # validate
    if num_gpus < 1 or gpus_per_node < 1:
        raise ConfigurationError("num_gpus and gpus_per_node must be >= 1")
    node_specs = []
    remaining = num_gpus
    while remaining > 0:
        n = min(gpus_per_node, remaining)
        node_specs.append((gpu_type, n, intra_bandwidth_gbps, 0))
        remaining -= n
    return _build_cluster(
        node_specs,
        name=name or f"homogeneous-{num_gpus}x{gpu_type}",
        seed=seed,
    )


def make_two_datacenter_cluster(
    inter_dc_gbps: float = 0.625,
    seed: RNGLike = 0,
) -> Cluster:
    """The Appendix H case study: one 4xA40 instance and one 4x3090Ti instance.

    With ``inter_dc_gbps ≈ 5`` GB/s (40 Gbps) the two instances are effectively in
    the same data center (Case A); with the default 0.625 GB/s (5 Gbps) they sit in
    different data centers (Case B), which makes cross-instance KV-cache transfer
    prohibitively expensive.
    """
    node_specs = [
        ("A40", 4, 28.0, 0),
        ("3090Ti", 4, 22.0, 1),
    ]
    config = NetworkConfig(inter_datacenter_gbps=inter_dc_gbps)
    return _build_cluster(
        node_specs,
        name=f"two-dc-{inter_dc_gbps:g}GBps",
        network_config=config,
        seed=seed,
    )


__all__ = [
    "Cluster",
    "make_cloud_cluster",
    "make_inhouse_cluster",
    "make_homogeneous_cluster",
    "make_two_datacenter_cluster",
]

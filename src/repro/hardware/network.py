"""Pairwise network model between GPUs (alpha-beta / Hockney model).

The paper characterises every GPU-to-GPU link by a latency ``alpha`` (seconds) and a
bandwidth ``beta`` (bytes/s); the time to move ``n`` bytes is ``alpha + n / beta``
(Equation 1 uses this form for KV-cache transfers).  Cloud environments exhibit
strong heterogeneity in these matrices — PCIe inside a node, Ethernet of varying
speed between nodes, and very slow links across data centers — whereas the in-house
environment is uniformly fast (NVLink).  Figure 13 of the paper visualises exactly
these matrices; :meth:`NetworkModel.bandwidth_matrix_gbps` regenerates the data
behind that figure.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.core.rng import RNGLike, ensure_rng
from repro.hardware.gpu import GPU
from repro.hardware.node import Node


class LinkClass(str, enum.Enum):
    """Coarse classification of a GPU-to-GPU link."""

    SELF = "self"
    INTRA_NODE = "intra_node"
    INTER_NODE = "inter_node"
    INTER_DATACENTER = "inter_datacenter"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Default latency per link class, in seconds.
DEFAULT_LATENCY_S = {
    LinkClass.SELF: 0.0,
    LinkClass.INTRA_NODE: 5e-6,
    LinkClass.INTER_NODE: 1e-4,
    LinkClass.INTER_DATACENTER: 2e-3,
}


@dataclass
class NetworkConfig:
    """Parameters controlling synthetic bandwidth-matrix generation.

    Bandwidths are in GB/s.  Inter-node bandwidth within a data center is sampled
    uniformly from ``[inter_node_min_gbps, inter_node_max_gbps]`` per node pair to
    model the heterogeneity of cloud Ethernet; intra-node PCIe bandwidth is sampled
    per node from ``[intra_node_min_gbps, intra_node_max_gbps]``.
    """

    intra_node_min_gbps: float = 16.0
    intra_node_max_gbps: float = 32.0
    inter_node_min_gbps: float = 1.25   # 10 Gbps Ethernet
    inter_node_max_gbps: float = 5.0    # 40 Gbps Ethernet
    inter_datacenter_gbps: float = 0.625  # 5 Gbps WAN
    intra_node_latency_s: float = DEFAULT_LATENCY_S[LinkClass.INTRA_NODE]
    inter_node_latency_s: float = DEFAULT_LATENCY_S[LinkClass.INTER_NODE]
    inter_datacenter_latency_s: float = DEFAULT_LATENCY_S[LinkClass.INTER_DATACENTER]

    def __post_init__(self) -> None:
        if not (0 < self.inter_node_min_gbps <= self.inter_node_max_gbps):
            raise ConfigurationError("inter-node bandwidth range must be positive and ordered")
        if not (0 < self.intra_node_min_gbps <= self.intra_node_max_gbps):
            raise ConfigurationError("intra-node bandwidth range must be positive and ordered")
        if self.inter_datacenter_gbps <= 0:
            raise ConfigurationError("inter_datacenter_gbps must be positive")


class NetworkModel:
    """Dense alpha/beta matrices over the GPUs of a cluster.

    Parameters
    ----------
    bandwidth_gbps:
        ``(n, n)`` symmetric matrix of link bandwidths in GB/s.  The diagonal holds
        an effectively-infinite value (on-device copies are not modelled).
    latency_s:
        ``(n, n)`` symmetric matrix of link latencies in seconds (zero diagonal).
    link_class:
        ``(n, n)`` matrix of :class:`LinkClass` values (object dtype), used by the
        scheduler heuristics (e.g. "no TP across nodes").
    """

    def __init__(
        self,
        bandwidth_gbps: np.ndarray,
        latency_s: np.ndarray,
        link_class: np.ndarray,
    ) -> None:
        bandwidth_gbps = np.asarray(bandwidth_gbps, dtype=float)
        latency_s = np.asarray(latency_s, dtype=float)
        if bandwidth_gbps.shape != latency_s.shape or bandwidth_gbps.ndim != 2:
            raise ConfigurationError("bandwidth and latency matrices must share a square shape")
        if bandwidth_gbps.shape[0] != bandwidth_gbps.shape[1]:
            raise ConfigurationError("network matrices must be square")
        if np.any(bandwidth_gbps <= 0):
            raise ConfigurationError("all bandwidths must be positive")
        if np.any(latency_s < 0):
            raise ConfigurationError("latencies must be non-negative")
        if not np.allclose(bandwidth_gbps, bandwidth_gbps.T):
            raise ConfigurationError("bandwidth matrix must be symmetric")
        if not np.allclose(latency_s, latency_s.T):
            raise ConfigurationError("latency matrix must be symmetric")
        self._bandwidth_gbps = bandwidth_gbps
        self._latency_s = latency_s
        self._link_class = np.asarray(link_class, dtype=object)

    # ------------------------------------------------------------------ builders
    @classmethod
    def from_nodes(
        cls,
        nodes: Sequence[Node],
        config: NetworkConfig | None = None,
        seed: RNGLike = 0,
    ) -> "NetworkModel":
        """Synthesise a network model from a node list.

        Intra-node links use each node's PCIe/NVLink bandwidth; inter-node links in
        the same data center sample an Ethernet bandwidth per node pair from the
        configured range; links across data centers use the (much lower) WAN
        bandwidth.  Sampling is deterministic for a given ``seed``.
        """
        config = config or NetworkConfig()
        rng = ensure_rng(seed)
        num_gpus = sum(node.num_gpus for node in nodes)
        bandwidth = np.zeros((num_gpus, num_gpus), dtype=float)
        latency = np.zeros((num_gpus, num_gpus), dtype=float)
        link_class = np.empty((num_gpus, num_gpus), dtype=object)

        # Map every GPU index to its node / datacenter.
        node_of_gpu: List[int] = []
        for node in nodes:
            node_of_gpu.extend([node.node_id] * node.num_gpus)
        node_by_id = {node.node_id: node for node in nodes}

        # Pre-sample a symmetric inter-node bandwidth per node pair (same DC).
        node_ids = [node.node_id for node in nodes]
        inter_node_bw: dict[tuple[int, int], float] = {}
        for a_idx, a in enumerate(node_ids):
            for b in node_ids[a_idx + 1:]:
                bw = rng.uniform(config.inter_node_min_gbps, config.inter_node_max_gbps)
                inter_node_bw[(a, b)] = bw
                inter_node_bw[(b, a)] = bw

        huge = 1e6  # effectively infinite bandwidth for the diagonal
        for i in range(num_gpus):
            for j in range(i, num_gpus):
                ni, nj = node_of_gpu[i], node_of_gpu[j]
                node_i, node_j = node_by_id[ni], node_by_id[nj]
                if i == j:
                    bw, lat, cls_ = huge, 0.0, LinkClass.SELF
                elif ni == nj:
                    bw = node_i.intra_bandwidth_gbps
                    lat = node_i.intra_latency_s
                    cls_ = LinkClass.INTRA_NODE
                elif node_i.datacenter == node_j.datacenter:
                    bw = inter_node_bw[(ni, nj)]
                    lat = config.inter_node_latency_s
                    cls_ = LinkClass.INTER_NODE
                else:
                    bw = config.inter_datacenter_gbps
                    lat = config.inter_datacenter_latency_s
                    cls_ = LinkClass.INTER_DATACENTER
                bandwidth[i, j] = bandwidth[j, i] = bw
                latency[i, j] = latency[j, i] = lat
                link_class[i, j] = link_class[j, i] = cls_
        return cls(bandwidth, latency, link_class)

    def scaled(
        self,
        bandwidth_scale: float = 1.0,
        latency_scale: float = 1.0,
        link_classes: Iterable[LinkClass] | None = None,
    ) -> "NetworkModel":
        """Return a degraded (or repaired) copy with scaled link matrices.

        Off-diagonal bandwidths are multiplied by ``bandwidth_scale`` and
        latencies by ``latency_scale``; the diagonal (on-device) entries are
        untouched.  ``link_classes`` restricts the scaling to a subset of link
        classes (e.g. only :attr:`LinkClass.INTER_DATACENTER` links during a
        WAN brownout); ``None`` scales every off-diagonal link.  The receiver
        is never mutated, so the pristine model stays available for repair —
        re-derive the healthy state from it rather than multiplying back.
        """
        if bandwidth_scale <= 0:
            raise ConfigurationError("bandwidth_scale must be positive")
        if latency_scale < 0:
            raise ConfigurationError("latency_scale must be non-negative")
        bandwidth = self._bandwidth_gbps.copy()
        latency = self._latency_s.copy()
        mask = ~np.eye(self.num_gpus, dtype=bool)
        if link_classes is not None:
            allowed = {LinkClass(c) for c in link_classes}
            in_class = np.frompyfunc(lambda c: c in allowed, 1, 1)(self._link_class)
            mask &= in_class.astype(bool)
        bandwidth[mask] *= bandwidth_scale
        latency[mask] *= latency_scale
        return NetworkModel(bandwidth, latency, self._link_class)

    # ------------------------------------------------------------------ accessors
    @property
    def num_gpus(self) -> int:
        """Number of GPUs covered by the matrices."""
        return self._bandwidth_gbps.shape[0]

    def bandwidth_gbps(self, i: int, j: int) -> float:
        """Link bandwidth between GPUs ``i`` and ``j`` in GB/s."""
        return float(self._bandwidth_gbps[i, j])

    def bandwidth_bytes(self, i: int, j: int) -> float:
        """Link bandwidth between GPUs ``i`` and ``j`` in bytes/s."""
        return float(self._bandwidth_gbps[i, j] * 1e9)

    def latency_s(self, i: int, j: int) -> float:
        """Link latency between GPUs ``i`` and ``j`` in seconds."""
        return float(self._latency_s[i, j])

    def link_class(self, i: int, j: int) -> LinkClass:
        """Coarse link classification between GPUs ``i`` and ``j``."""
        return self._link_class[i, j]

    def transfer_time(self, i: int, j: int, num_bytes: float) -> float:
        """Alpha-beta transfer time of ``num_bytes`` bytes between GPUs ``i`` and ``j``."""
        if i == j:
            return 0.0
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return self.latency_s(i, j) + num_bytes / self.bandwidth_bytes(i, j)

    def bandwidth_matrix_gbps(self) -> np.ndarray:
        """Return a copy of the full bandwidth matrix (GB/s) — the Figure 13 data."""
        return self._bandwidth_gbps.copy()

    def latency_matrix_s(self) -> np.ndarray:
        """Return a copy of the full latency matrix (seconds)."""
        return self._latency_s.copy()

    # ------------------------------------------------------- set-level aggregates
    def min_bandwidth_within(self, gpu_ids: Iterable[int]) -> float:
        """Minimum pairwise bandwidth (GB/s) among a set of GPUs.

        Used by the parallel-configuration heuristics: tensor parallelism is only
        allowed over GPU sets whose slowest internal link is fast enough (in
        practice, within a single node).
        """
        ids = list(gpu_ids)
        if len(ids) <= 1:
            return float("inf")
        sub = self._bandwidth_gbps[np.ix_(ids, ids)]
        off_diag = sub[~np.eye(len(ids), dtype=bool)]
        return float(off_diag.min())

    def mean_bandwidth_between(self, group_a: Iterable[int], group_b: Iterable[int]) -> float:
        """Mean pairwise bandwidth (GB/s) between two disjoint GPU sets."""
        a = list(group_a)
        b = list(group_b)
        if not a or not b:
            raise ValueError("both GPU sets must be non-empty")
        sub = self._bandwidth_gbps[np.ix_(a, b)]
        return float(sub.mean())

    def best_link_between(self, group_a: Iterable[int], group_b: Iterable[int]) -> tuple[int, int, float]:
        """Return ``(i, j, bandwidth_gbps)`` of the fastest link between two GPU sets.

        KV caches are sent point-to-point, so the orchestrator routes each
        prefill→decode transfer over the single best link between the two replicas.
        """
        a = list(group_a)
        b = list(group_b)
        if not a or not b:
            raise ValueError("both GPU sets must be non-empty")
        sub = self._bandwidth_gbps[np.ix_(a, b)]
        flat_idx = int(np.argmax(sub))
        ai, bj = np.unravel_index(flat_idx, sub.shape)
        return a[ai], b[bj], float(sub[ai, bj])

    def distance_matrix(self) -> np.ndarray:
        """Return a dissimilarity matrix (1 / bandwidth) for hierarchical clustering.

        GPUs connected by fast links are "close"; the scheduler's initialisation
        clusters GPUs so that model-serving groups avoid ultra-low-bandwidth links.
        """
        with np.errstate(divide="ignore"):
            dist = 1.0 / self._bandwidth_gbps
        np.fill_diagonal(dist, 0.0)
        return dist


__all__ = ["LinkClass", "NetworkConfig", "NetworkModel", "DEFAULT_LATENCY_S"]

"""Rental-price accounting.

The paper's headline claim is *cost efficiency*: given the same hourly budget,
renting many heterogeneous cloud GPUs and scheduling them well beats a smaller
number of top-end homogeneous GPUs.  This module provides the price accounting used
by those comparisons — cluster price per hour, price parity checks between the cloud
and in-house environments, and the per-request phase prices behind Figure 1.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.hardware.gpu import GPUSpec, get_gpu_spec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.hardware.cluster import Cluster
    from repro.model.architecture import ModelConfig


def cluster_price_per_hour(cluster: "Cluster") -> float:
    """Total rental price of a cluster's available GPUs in USD/hour."""
    return cluster.price_per_hour


def price_parity_ratio(cluster_a: "Cluster", cluster_b: "Cluster") -> float:
    """Ratio of cluster A's hourly price to cluster B's.

    The paper compares the $13.542/hour cloud environment against the
    $14.024/hour 8xA100 in-house environment; the ratio should be close to 1.
    """
    return cluster_a.price_per_hour / cluster_b.price_per_hour


def price_per_request_phase(
    gpu: str | GPUSpec,
    model: "ModelConfig",
    phase: str,
    input_length: int = 512,
    output_length: int = 16,
) -> float:
    """Dollar cost of running one request's prefill or decode phase on one GPU type.

    This reproduces the quantity plotted in Figure 1: the time a single GPU of the
    given type needs for the phase (from the roofline model, TP=1/PP=1), multiplied
    by the GPU's rental price.  A40 (compute-rich) is cheaper for prefill; 3090Ti
    (bandwidth-rich) is cheaper for decode.

    Parameters
    ----------
    gpu:
        GPU type name or :class:`GPUSpec`.
    model:
        Model architecture to serve.
    phase:
        ``"prefill"`` or ``"decode"``.
    input_length, output_length:
        Request shape; Figure 1 uses 512 input and 16 output tokens.
    """
    # Imported lazily to avoid a hardware <-> costmodel import cycle.
    from repro.core.types import Phase
    from repro.costmodel.latency import single_gpu_phase_latency

    spec = gpu if isinstance(gpu, GPUSpec) else get_gpu_spec(gpu)
    phase_enum = Phase(phase) if not isinstance(phase, Phase) else phase
    seconds = single_gpu_phase_latency(
        spec,
        model,
        phase_enum,
        input_length=input_length,
        output_length=output_length,
    )
    dollars_per_second = spec.price_per_hour / 3600.0
    return seconds * dollars_per_second


__all__ = [
    "cluster_price_per_hour",
    "price_parity_ratio",
    "price_per_request_phase",
]

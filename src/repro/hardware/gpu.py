"""GPU specifications and the catalog of GPU types used in the paper.

Table 1 of the paper lists the five cloud GPU types (A100, A6000, A5000, A40,
3090Ti) with their memory-access bandwidth, peak FP16 FLOPS, memory capacity and
hourly rental price.  Those numbers are reproduced verbatim here; the scheduler and
the roofline cost model consume nothing about a GPU beyond this specification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.exceptions import ConfigurationError


@dataclass(frozen=True)
class GPUSpec:
    """Static specification of one GPU type.

    Attributes
    ----------
    name:
        Canonical type name (e.g. ``"A100"``).
    peak_fp16_tflops:
        Peak dense FP16 throughput in TFLOPS.
    memory_bandwidth_gbps:
        Device memory access bandwidth in GB/s.
    memory_gb:
        Device memory capacity in GB.
    price_per_hour:
        Rental price in USD per GPU-hour (Table 1).
    """

    name: str
    peak_fp16_tflops: float
    memory_bandwidth_gbps: float
    memory_gb: float
    price_per_hour: float

    def __post_init__(self) -> None:
        if self.peak_fp16_tflops <= 0:
            raise ConfigurationError(f"{self.name}: peak_fp16_tflops must be positive")
        if self.memory_bandwidth_gbps <= 0:
            raise ConfigurationError(f"{self.name}: memory_bandwidth_gbps must be positive")
        if self.memory_gb <= 0:
            raise ConfigurationError(f"{self.name}: memory_gb must be positive")
        if self.price_per_hour < 0:
            raise ConfigurationError(f"{self.name}: price_per_hour must be >= 0")

    @property
    def peak_fp16_flops(self) -> float:
        """Peak FP16 throughput in FLOP/s."""
        return self.peak_fp16_tflops * 1e12

    @property
    def memory_bandwidth_bytes(self) -> float:
        """Memory bandwidth in bytes/s."""
        return self.memory_bandwidth_gbps * 1e9

    @property
    def memory_bytes(self) -> float:
        """Memory capacity in bytes."""
        return self.memory_gb * 1e9

    @property
    def flops_per_dollar(self) -> float:
        """Peak FP16 FLOP/s per rental dollar per hour (compute cost-efficiency)."""
        return self.peak_fp16_flops / self.price_per_hour

    @property
    def bandwidth_per_dollar(self) -> float:
        """Memory bandwidth (bytes/s) per rental dollar per hour."""
        return self.memory_bandwidth_bytes / self.price_per_hour

    @property
    def ridge_point(self) -> float:
        """Roofline ridge point in FLOPs per byte.

        Workloads with arithmetic intensity below the ridge point are memory-bound
        on this GPU; above it they are compute-bound.  The decode phase sits far
        below typical ridge points, which is why high-bandwidth GPUs (3090Ti) win
        decode while high-FLOPS GPUs (A40) win prefill.
        """
        return self.peak_fp16_flops / self.memory_bandwidth_bytes


#: GPU catalog reproducing Table 1 of the paper, plus the A100 used by the in-house
#: baseline environment.
GPU_CATALOG: Dict[str, GPUSpec] = {
    "A100": GPUSpec(
        name="A100",
        peak_fp16_tflops=312.0,
        memory_bandwidth_gbps=2000.0,
        memory_gb=80.0,
        price_per_hour=1.753,
    ),
    "A6000": GPUSpec(
        name="A6000",
        peak_fp16_tflops=38.7,
        memory_bandwidth_gbps=768.0,
        memory_gb=48.0,
        price_per_hour=0.483,
    ),
    "A5000": GPUSpec(
        name="A5000",
        peak_fp16_tflops=27.8,
        memory_bandwidth_gbps=626.8,
        memory_gb=24.0,
        price_per_hour=0.223,
    ),
    "A40": GPUSpec(
        name="A40",
        peak_fp16_tflops=149.7,
        memory_bandwidth_gbps=696.0,
        memory_gb=48.0,
        price_per_hour=0.403,
    ),
    "3090Ti": GPUSpec(
        name="3090Ti",
        peak_fp16_tflops=71.0,
        memory_bandwidth_gbps=1008.0,
        memory_gb=24.0,
        price_per_hour=0.307,
    ),
}


def get_gpu_spec(name: str) -> GPUSpec:
    """Look up a GPU specification by (case-insensitive) type name."""
    key = name.strip()
    if key in GPU_CATALOG:
        return GPU_CATALOG[key]
    for cat_name, spec in GPU_CATALOG.items():
        if cat_name.lower() == key.lower():
            return spec
    raise KeyError(f"Unknown GPU type {name!r}; known types: {sorted(GPU_CATALOG)}")


@dataclass(frozen=True)
class GPU:
    """A physical GPU instance inside a cluster.

    Attributes
    ----------
    gpu_id:
        Global index within the cluster (row/column index into the bandwidth
        matrices).
    spec:
        Static :class:`GPUSpec`.
    node_id:
        Index of the node (cloud instance) hosting this GPU.
    datacenter:
        Identifier of the data center hosting the node (relevant for the cross-DC
        case study in Appendix H).
    """

    gpu_id: int
    spec: GPUSpec
    node_id: int
    datacenter: int = 0

    @property
    def type_name(self) -> str:
        """GPU type name (e.g. ``"A40"``)."""
        return self.spec.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GPU(id={self.gpu_id}, type={self.spec.name}, node={self.node_id})"


__all__ = ["GPUSpec", "GPU", "GPU_CATALOG", "get_gpu_spec"]
